(* Tests for the cooperative scheduler: virtual time, events, sync,
   mailboxes, deadlock detection, dispatch policies. *)

open Capfs_sched

let vsched ?policy () = Sched.create ?policy ~clock:`Virtual ()

let test_spawn_and_run () =
  let s = vsched () in
  let hits = ref 0 in
  for _ = 1 to 5 do
    ignore (Sched.spawn s (fun () -> incr hits))
  done;
  Sched.run s;
  Alcotest.(check int) "all threads ran" 5 !hits

let test_virtual_time_advances () =
  let s = vsched () in
  let seen = ref [] in
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 10.;
         seen := ("a", Sched.now s) :: !seen));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 5.;
         seen := ("b", Sched.now s) :: !seen));
  Sched.run s;
  (match List.rev !seen with
  | [ ("b", t1); ("a", t2) ] ->
    Alcotest.(check (float 1e-9)) "b at 5" 5. t1;
    Alcotest.(check (float 1e-9)) "a at 10" 10. t2
  | _ -> Alcotest.fail "wrong wake order");
  Alcotest.(check (float 1e-9)) "time rests at last event" 10. (Sched.now s)

let test_virtual_time_costs_nothing_wallclock () =
  let s = vsched () in
  ignore (Sched.spawn s (fun () -> Sched.sleep s 86_400.));
  let t0 = Unix.gettimeofday () in
  Sched.run s;
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed > 1. then Alcotest.failf "simulated day took %.2fs real" elapsed;
  Alcotest.(check (float 1e-6)) "a day passed" 86_400. (Sched.now s)

let test_nested_sleeps_ordering () =
  let s = vsched () in
  let order = Buffer.create 16 in
  ignore
    (Sched.spawn s (fun () ->
         Buffer.add_char order 'a';
         Sched.sleep s 1.;
         Buffer.add_char order 'c';
         Sched.sleep s 2.;
         Buffer.add_char order 'e'));
  ignore
    (Sched.spawn s (fun () ->
         Buffer.add_char order 'b';
         Sched.sleep s 2.;
         Buffer.add_char order 'd';
         Sched.sleep s 2.;
         Buffer.add_char order 'f'));
  Sched.run s;
  (* a/b order depends on dispatch policy, but the timed waves are fixed *)
  let str = Buffer.contents order in
  let wave1 = String.sub str 0 2 and rest = String.sub str 2 4 in
  if not (wave1 = "ab" || wave1 = "ba") then
    Alcotest.failf "first wave %S" wave1;
  Alcotest.(check string) "timed waves" "cdef" rest

let test_event_signal_wakes () =
  let s = vsched () in
  let ev = Sched.new_event s in
  let woken_at = ref (-1.) in
  ignore
    (Sched.spawn s (fun () ->
         Sched.await s ev;
         woken_at := Sched.now s));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 3.;
         Sched.signal s ev));
  Sched.run s;
  Alcotest.(check (float 1e-9)) "woken when signalled" 3. !woken_at

let test_event_pending_signal_not_lost () =
  let s = vsched () in
  let ev = Sched.new_event s in
  let ok = ref false in
  ignore
    (Sched.spawn s (fun () ->
         Sched.signal s ev;
         (* signal before any waiter: must be remembered *)
         Sched.sleep s 1.));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 5.;
         Sched.await s ev;
         ok := true));
  Sched.run s;
  Alcotest.(check bool) "pending signal consumed" true !ok

let test_event_signal_wakes_exactly_one () =
  let s = vsched () in
  let ev = Sched.new_event s in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Sched.spawn s ~daemon:true (fun () ->
           Sched.await s ev;
           incr woken))
  done;
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 1.;
         Sched.signal s ev;
         Sched.sleep s 1.));
  Sched.run s;
  Alcotest.(check int) "one waiter woken" 1 !woken

let test_broadcast_wakes_all () =
  let s = vsched () in
  let ev = Sched.new_event s in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Sched.spawn s (fun () ->
           Sched.await s ev;
           incr woken))
  done;
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 1.;
         Alcotest.(check int) "waiters" 3 (Sched.waiters s ev);
         Sched.broadcast s ev));
  Sched.run s;
  Alcotest.(check int) "all woken" 3 !woken

let test_await_timeout_expires () =
  let s = vsched () in
  let ev = Sched.new_event s in
  let got = ref true in
  ignore (Sched.spawn s (fun () -> got := Sched.await_timeout s ev 2.));
  Sched.run s;
  Alcotest.(check bool) "timed out" false !got;
  Alcotest.(check (float 1e-9)) "took 2s virtual" 2. (Sched.now s)

let test_await_timeout_signalled () =
  let s = vsched () in
  let ev = Sched.new_event s in
  let got = ref false in
  ignore (Sched.spawn s (fun () -> got := Sched.await_timeout s ev 10.));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 1.;
         Sched.signal s ev));
  Sched.run s;
  Alcotest.(check bool) "signalled" true !got;
  Alcotest.(check (float 1e-9)) "no spurious wait" 1. (Sched.now s)

let test_deadlock_detected () =
  let s = vsched () in
  let ev = Sched.new_event s in
  ignore (Sched.spawn s ~name:"stuck" (fun () -> Sched.await s ev));
  match Sched.run s with
  | () -> Alcotest.fail "expected deadlock"
  | exception Sched.Deadlock names ->
    Alcotest.(check (list string)) "blocked thread named" [ "stuck" ] names

let test_daemons_do_not_block_exit () =
  let s = vsched () in
  let ticks = ref 0 in
  ignore
    (Sched.spawn s ~daemon:true ~name:"update-30s" (fun () ->
         while true do
           Sched.sleep s 30.;
           incr ticks
         done));
  ignore (Sched.spawn s (fun () -> Sched.sleep s 95.));
  Sched.run s;
  Alcotest.(check int) "daemon ticked thrice" 3 !ticks

let test_lone_daemon_sleep_parks () =
  (* Regression: once every non-daemon fibre has finished, a daemon's
     virtual-clock sleep must actually suspend it so [run] can observe
     that no non-daemon work remains and return. The solo fast path
     used to complete the sleep in place for the lone daemon, spinning
     its service loop forever (a Pfs periodic flusher outliving the
     boot fibre livelocked exactly this way). Fifo dispatch makes the
     non-daemon finish first, so the daemon's sleep happens alone. *)
  let s = vsched ~policy:`Fifo () in
  let ticks = ref 0 in
  ignore (Sched.spawn s ~name:"boot" (fun () -> ()));
  ignore
    (Sched.spawn s ~daemon:true ~name:"flusher" (fun () ->
         while true do
           Sched.sleep s 5.;
           incr ticks
         done));
  Sched.run s;
  Alcotest.(check int) "lone daemon parked, not spun" 0 !ticks

let test_run_until_horizon () =
  let s = vsched () in
  let late = ref false in
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 1000.;
         late := true));
  Sched.run ~until:10. s;
  Alcotest.(check bool) "beyond-horizon work not run" false !late;
  Alcotest.(check (float 1e-9)) "clock parked at horizon" 10. (Sched.now s)

let test_exception_propagates () =
  let s = vsched () in
  ignore (Sched.spawn s (fun () -> failwith "boom"));
  ignore (Sched.spawn s (fun () -> Sched.sleep s 1.));
  match Sched.run s with
  | () -> Alcotest.fail "expected failure to propagate"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg

let test_fifo_policy_order () =
  let s = vsched ~policy:`Fifo () in
  let order = Buffer.create 4 in
  ignore (Sched.spawn s (fun () -> Buffer.add_char order 'a'));
  ignore (Sched.spawn s (fun () -> Buffer.add_char order 'b'));
  ignore (Sched.spawn s (fun () -> Buffer.add_char order 'c'));
  Sched.run s;
  Alcotest.(check string) "fifo order" "abc" (Buffer.contents order)

let test_fifo_ring_wraparound () =
  (* Many fibres yielding repeatedly force the run queue's circular
     buffer to wrap its head pointer many times past the physical end;
     FIFO round-robin order must survive every wrap. *)
  let fibres = 13 and rounds = 7 in
  let s = vsched ~policy:`Fifo () in
  let order = ref [] in
  for i = 0 to fibres - 1 do
    ignore
      (Sched.spawn s (fun () ->
           for _ = 1 to rounds do
             order := i :: !order;
             Sched.yield s
           done))
  done;
  Sched.run s;
  let got = List.rev !order in
  let expected =
    List.concat_map
      (fun _ -> List.init fibres (fun i -> i))
      (List.init rounds (fun r -> r))
  in
  Alcotest.(check (list int)) "round-robin across wraps" expected got

let test_random_policy_deterministic_by_seed () =
  let trace seed =
    let s = Sched.create ~seed ~clock:`Virtual () in
    let order = Buffer.create 16 in
    for i = 0 to 9 do
      ignore
        (Sched.spawn s (fun () ->
             Buffer.add_char order (Char.chr (Char.code '0' + i))))
    done;
    Sched.run s;
    Buffer.contents order
  in
  Alcotest.(check string) "same seed, same schedule" (trace 11) (trace 11);
  if trace 11 = trace 12 && trace 12 = trace 13 then
    Alcotest.fail "different seeds should shuffle dispatch"

let test_real_clock_sleeps () =
  let s = Sched.create ~clock:`Real () in
  let t0 = Unix.gettimeofday () in
  ignore (Sched.spawn s (fun () -> Sched.sleep s 0.05));
  Sched.run s;
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed < 0.045 then Alcotest.failf "slept only %.3fs" elapsed;
  if Sched.now s < 0.045 then Alcotest.fail "now must reflect elapsed time"

let test_wait_readable_real_pipe () =
  let s = Sched.create ~clock:`Real () in
  let r, w = Unix.pipe () in
  let got = ref "" in
  ignore
    (Sched.spawn s ~name:"reader" (fun () ->
         Sched.wait_readable s r;
         let buf = Bytes.create 16 in
         let n = Unix.read r buf 0 16 in
         got := Bytes.sub_string buf 0 n));
  ignore
    (Sched.spawn s ~name:"writer" (fun () ->
         Sched.sleep s 0.02;
         ignore (Unix.write_substring w "ping" 0 4)));
  Sched.run s;
  Unix.close r;
  Unix.close w;
  Alcotest.(check string) "read external event" "ping" !got

let test_wait_readable_rejected_in_virtual () =
  let s = vsched () in
  let r, w = Unix.pipe () in
  let rejected = ref false in
  ignore
    (Sched.spawn s (fun () ->
         try Sched.wait_readable s r
         with Invalid_argument _ -> rejected := true));
  Sched.run s;
  Unix.close r;
  Unix.close w;
  Alcotest.(check bool) "virtual clock refuses fds" true !rejected

let test_stop_interrupts_run () =
  let s = vsched () in
  let reached = ref 0 in
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 1.;
         incr reached;
         Sched.stop s;
         Sched.sleep s 1.;
         (* Stopped is raised by the next blocking call *)
         incr reached));
  (match Sched.run s with
  | () -> ()
  | exception Capfs_sched.Sched.Stopped -> ());
  Alcotest.(check int) "stopped before the second sleep" 1 !reached

let test_signal_after_timeout_not_double_waking () =
  let s = vsched () in
  let ev = Sched.new_event s in
  let wakes = ref 0 in
  ignore
    (Sched.spawn s (fun () ->
         if not (Sched.await_timeout s ev 1.) then incr wakes;
         (* the late signal must not resurrect the timed-out waiter;
            it becomes pending for the NEXT await *)
         Sched.sleep s 5.;
         Sched.await s ev;
         incr wakes));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 2.;
         Sched.signal s ev));
  Sched.run s;
  Alcotest.(check int) "timeout then pending-signal consumption" 2 !wakes

let test_many_fibres_scale () =
  let s = vsched () in
  let total = ref 0 in
  for i = 1 to 2000 do
    ignore
      (Sched.spawn s (fun () ->
           Sched.sleep s (float_of_int (i mod 17) /. 100.);
           incr total))
  done;
  Sched.run s;
  Alcotest.(check int) "2000 fibres" 2000 !total

(* Sync primitives *)

let test_mutex_excludes () =
  let s = vsched () in
  let m = Sync.Mutex.create s in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Sched.spawn s (fun () ->
           Sync.Mutex.with_lock m (fun () ->
               incr inside;
               if !inside > !max_inside then max_inside := !inside;
               Sched.sleep s 1.;
               decr inside)))
  done;
  Sched.run s;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  Alcotest.(check (float 1e-9)) "serialized" 4. (Sched.now s)

let test_mutex_trylock () =
  let s = vsched () in
  let m = Sync.Mutex.create s in
  ignore
    (Sched.spawn s (fun () ->
         Alcotest.(check bool) "first succeeds" true (Sync.Mutex.try_lock m);
         Alcotest.(check bool) "second fails" false (Sync.Mutex.try_lock m);
         Sync.Mutex.unlock m;
         Alcotest.(check bool) "free again" true (Sync.Mutex.try_lock m);
         Sync.Mutex.unlock m));
  Sched.run s

let test_unlock_unlocked_raises () =
  let s = vsched () in
  let m = Sync.Mutex.create s in
  let raised = ref false in
  ignore
    (Sched.spawn s (fun () ->
         try Sync.Mutex.unlock m with Invalid_argument _ -> raised := true));
  Sched.run s;
  Alcotest.(check bool) "raises" true !raised

let test_semaphore_capacity () =
  let s = vsched () in
  let sem = Sync.Semaphore.create s ~capacity:2 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 6 do
    ignore
      (Sched.spawn s (fun () ->
           Sync.Semaphore.with_permit sem (fun () ->
               incr inside;
               if !inside > !max_inside then max_inside := !inside;
               Sched.sleep s 1.;
               decr inside)))
  done;
  Sched.run s;
  Alcotest.(check int) "at most 2 inside" 2 !max_inside;
  Alcotest.(check (float 1e-9)) "three waves" 3. (Sched.now s)

let test_condition_wait_signal () =
  let s = vsched () in
  let m = Sync.Mutex.create s in
  let c = Sync.Condition.create s in
  let ready = ref false and observed = ref false in
  ignore
    (Sched.spawn s (fun () ->
         Sync.Mutex.lock m;
         while not !ready do
           Sync.Condition.wait c m
         done;
         observed := true;
         Sync.Mutex.unlock m));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 2.;
         Sync.Mutex.lock m;
         ready := true;
         Sync.Condition.signal c;
         Sync.Mutex.unlock m));
  Sched.run s;
  Alcotest.(check bool) "condition observed" true !observed

(* Mailbox *)

let test_mailbox_fifo () =
  let s = vsched ~policy:`Fifo () in
  let mb = Mailbox.create s in
  let got = ref [] in
  ignore
    (Sched.spawn s (fun () ->
         for i = 1 to 3 do
           Mailbox.send mb i
         done));
  ignore
    (Sched.spawn s (fun () ->
         for _ = 1 to 3 do
           got := Mailbox.recv mb :: !got
         done));
  Sched.run s;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocking_recv () =
  let s = vsched () in
  let mb = Mailbox.create s in
  let got = ref 0 and at = ref 0. in
  ignore
    (Sched.spawn s (fun () ->
         got := Mailbox.recv mb;
         at := Sched.now s));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 7.;
         Mailbox.send mb 99));
  Sched.run s;
  Alcotest.(check int) "value" 99 !got;
  Alcotest.(check (float 1e-9)) "blocked until send" 7. !at

let test_mailbox_capacity_backpressure () =
  let s = vsched () in
  let mb = Mailbox.create ~capacity:1 s in
  let sent_second_at = ref 0. in
  ignore
    (Sched.spawn s (fun () ->
         Mailbox.send mb 1;
         Mailbox.send mb 2;
         sent_second_at := Sched.now s));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 5.;
         ignore (Mailbox.recv mb);
         ignore (Mailbox.recv mb)));
  Sched.run s;
  Alcotest.(check (float 1e-9)) "producer blocked until drain" 5.
    !sent_second_at

let test_mailbox_recv_timeout () =
  let s = vsched () in
  let mb : int Mailbox.t = Mailbox.create s in
  let got = ref (Some 1) in
  ignore (Sched.spawn s (fun () -> got := Mailbox.recv_timeout mb 3.));
  Sched.run s;
  Alcotest.(check bool) "timed out" true (!got = None);
  Alcotest.(check (float 1e-9)) "3s passed" 3. (Sched.now s)

let test_mailbox_try_ops () =
  let s = vsched () in
  let mb = Mailbox.create ~capacity:1 s in
  ignore
    (Sched.spawn s (fun () ->
         Alcotest.(check bool) "send ok" true (Mailbox.try_send mb 1);
         Alcotest.(check bool) "full" false (Mailbox.try_send mb 2);
         Alcotest.(check bool) "recv" true (Mailbox.try_recv mb = Some 1);
         Alcotest.(check bool) "empty" true (Mailbox.try_recv mb = None)));
  Sched.run s

(* Heap *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_remove () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check bool) "removed" true (Heap.remove h (fun x -> x = 2));
  Alcotest.(check bool) "absent" false (Heap.remove h (fun x -> x = 7));
  Alcotest.(check int) "len" 2 (Heap.length h)

let prop_heap_pop_monotone =
  QCheck.Test.make ~name:"heap pops in nondecreasing order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec check prev =
        match Heap.pop h with
        | None -> true
        | Some x -> x >= prev && check x
      in
      check min_int)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_heap_pop_monotone ]

let suite =
  [
    Alcotest.test_case "spawn and run" `Quick test_spawn_and_run;
    Alcotest.test_case "virtual time advances" `Quick
      test_virtual_time_advances;
    Alcotest.test_case "virtual day costs no wall-clock" `Quick
      test_virtual_time_costs_nothing_wallclock;
    Alcotest.test_case "nested sleeps ordering" `Quick
      test_nested_sleeps_ordering;
    Alcotest.test_case "event signal wakes" `Quick test_event_signal_wakes;
    Alcotest.test_case "pending signal not lost" `Quick
      test_event_pending_signal_not_lost;
    Alcotest.test_case "signal wakes exactly one" `Quick
      test_event_signal_wakes_exactly_one;
    Alcotest.test_case "broadcast wakes all" `Quick test_broadcast_wakes_all;
    Alcotest.test_case "await timeout expires" `Quick test_await_timeout_expires;
    Alcotest.test_case "await timeout signalled" `Quick
      test_await_timeout_signalled;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "daemons do not block exit" `Quick
      test_daemons_do_not_block_exit;
    Alcotest.test_case "lone daemon sleep parks" `Quick
      test_lone_daemon_sleep_parks;
    Alcotest.test_case "run until horizon" `Quick test_run_until_horizon;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "fifo policy order" `Quick test_fifo_policy_order;
    Alcotest.test_case "fifo ring wraparound" `Quick test_fifo_ring_wraparound;
    Alcotest.test_case "random policy deterministic" `Quick
      test_random_policy_deterministic_by_seed;
    Alcotest.test_case "real clock sleeps" `Quick test_real_clock_sleeps;
    Alcotest.test_case "wait_readable on a pipe" `Quick
      test_wait_readable_real_pipe;
    Alcotest.test_case "wait_readable rejected in virtual" `Quick
      test_wait_readable_rejected_in_virtual;
    Alcotest.test_case "stop interrupts run" `Quick test_stop_interrupts_run;
    Alcotest.test_case "signal after timeout" `Quick
      test_signal_after_timeout_not_double_waking;
    Alcotest.test_case "2000 fibres" `Quick test_many_fibres_scale;
    Alcotest.test_case "mutex excludes" `Quick test_mutex_excludes;
    Alcotest.test_case "mutex trylock" `Quick test_mutex_trylock;
    Alcotest.test_case "unlock unlocked raises" `Quick
      test_unlock_unlocked_raises;
    Alcotest.test_case "semaphore capacity" `Quick test_semaphore_capacity;
    Alcotest.test_case "condition wait/signal" `Quick
      test_condition_wait_signal;
    Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox blocking recv" `Quick
      test_mailbox_blocking_recv;
    Alcotest.test_case "mailbox capacity backpressure" `Quick
      test_mailbox_capacity_backpressure;
    Alcotest.test_case "mailbox recv timeout" `Quick test_mailbox_recv_timeout;
    Alcotest.test_case "mailbox try ops" `Quick test_mailbox_try_ops;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap remove" `Quick test_heap_remove;
  ]
  @ qsuite
