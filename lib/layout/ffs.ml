module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Errno = Capfs_core.Errno
module Stats = Capfs_stats
module Counter = Capfs_stats.Counter

let src = Logs.Src.create "capfs.ffs" ~doc:"FFS-like update-in-place layout"

module Log = (val Logs.src_log src : Logs.LOG)

type config = { group_blocks : int; inodes_per_group : int }

let default_config = { group_blocks = 2048; inodes_per_group = 64 }

let magic = "CAPFFS01"

type group = {
  base : int; (* first block of the group *)
  block_bitmap : Bytes.t; (* bit per block within the group *)
  inode_bitmap : Bytes.t;
  mutable dirty : bool;
  mutable rotor : int; (* next allocation probe *)
}

type t = {
  sched : Sched.t;
  driver : Driver.t;
  c_alloc : Counter.t;
  lname : string;
  cfg : config;
  block_bytes : int;
  spb : int;
  total_blocks : int;
  ngroups : int;
  groups : group array;
  inodes : (int, Inode.t) Hashtbl.t;
  indirect_of : (int, int list) Hashtbl.t;
  dirty_inodes : (int, unit) Hashtbl.t;
  mutable next_dir_group : int;
  mutable data_writes : int;
  mutable metadata_writes : int;
}

(* {2 Bitmaps} *)

let bit_get b i = Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set b i v =
  let cur = Char.code (Bytes.get b (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  Bytes.set b (i / 8) (Char.chr (if v then cur lor mask else cur land lnot mask))

(* {2 Geometry} *)

let meta_blocks cfg = 2 + cfg.inodes_per_group (* bitmaps + inode table *)
let group_base t g = 1 + (g * t.cfg.group_blocks)
let inode_addr t ino =
  let g = (ino - 1) / t.cfg.inodes_per_group in
  let slot = (ino - 1) mod t.cfg.inodes_per_group in
  group_base t g + 2 + slot

let group_of_ino t ino = (ino - 1) / t.cfg.inodes_per_group

let write_block_raw t ~addr data =
  Driver.write_exn t.driver ~lba:(addr * t.spb) data
let read_block_raw t ~addr =
  Driver.read_exn t.driver ~lba:(addr * t.spb) ~sectors:t.spb

let pad_to_block t s =
  let b = Bytes.make t.block_bytes '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  Data.Real b

(* {2 Block allocation} *)

(* First-fit from the group's rotor; spill to following groups. *)
let alloc_block t ~prefer_group =
  let try_group g =
    let grp = t.groups.(g) in
    let n = t.cfg.group_blocks in
    let rec probe i tried =
      if tried >= n then None
      else begin
        let j = (grp.rotor + i) mod n in
        if not (bit_get grp.block_bitmap j) then begin
          bit_set grp.block_bitmap j true;
          grp.dirty <- true;
          grp.rotor <- (j + 1) mod n;
          Some (grp.base + j)
        end
        else probe (i + 1) (tried + 1)
      end
    in
    probe 0 0
  in
  let rec scan i =
    if i >= t.ngroups then raise (Errno.Error Errno.ENOSPC)
    else
      match try_group ((prefer_group + i) mod t.ngroups) with
      | Some addr -> addr
      | None -> scan (i + 1)
  in
  scan 0

let free_block t addr =
  if addr >= 1 then begin
    let g = (addr - 1) / t.cfg.group_blocks in
    if g < t.ngroups then begin
      let grp = t.groups.(g) in
      let j = addr - grp.base in
      if j >= 0 && j < t.cfg.group_blocks then begin
        bit_set grp.block_bitmap j false;
        grp.dirty <- true
      end
    end
  end

let free_blocks_total t =
  let n = ref 0 in
  Array.iter
    (fun grp ->
      for j = 0 to t.cfg.group_blocks - 1 do
        if not (bit_get grp.block_bitmap j) then incr n
      done)
    t.groups;
  !n

(* {2 Inode persistence} *)

let write_inode_now t (inode : Inode.t) =
  let ino = inode.Inode.ino in
  (* re-spill indirect blocks in place *)
  (match Hashtbl.find_opt t.indirect_of ino with
  | Some olds -> List.iter (free_block t) olds
  | None -> ());
  let per = Inode.addrs_per_indirect ~block_bytes:t.block_bytes in
  let spill = Stdlib.max 0 (inode.Inode.nblocks - Inode.ndirect) in
  let n_ind = (spill + per - 1) / per in
  let g = group_of_ino t ino in
  let indirect =
    List.init n_ind (fun k ->
        let w = Codec.Writer.create () in
        let base = Inode.ndirect + (k * per) in
        let count = Stdlib.min per (inode.Inode.nblocks - base) in
        Codec.Writer.u32 w count;
        for i = base to base + count - 1 do
          Codec.Writer.u64 w (Inode.get_addr inode i + 1)
        done;
        let addr = alloc_block t ~prefer_group:g in
        write_block_raw t ~addr (pad_to_block t (Codec.Writer.contents w));
        t.metadata_writes <- t.metadata_writes + 1;
        addr)
  in
  Hashtbl.replace t.indirect_of ino indirect;
  write_block_raw t ~addr:(inode_addr t ino)
    (pad_to_block t (Inode.serialize inode ~indirect));
  t.metadata_writes <- t.metadata_writes + 1

let flush_dirty_inodes t =
  let inos =
    Hashtbl.fold (fun ino () acc -> ino :: acc) t.dirty_inodes []
    |> List.sort compare
  in
  List.iter
    (fun ino ->
      Hashtbl.remove t.dirty_inodes ino;
      match Hashtbl.find_opt t.inodes ino with
      | Some inode -> write_inode_now t inode
      | None -> ())
    inos

let write_group_metadata t =
  Array.iteri
    (fun _g grp ->
      if grp.dirty then begin
        grp.dirty <- false;
        write_block_raw t ~addr:grp.base
          (pad_to_block t (Bytes.to_string grp.block_bitmap));
        write_block_raw t ~addr:(grp.base + 1)
          (pad_to_block t (Bytes.to_string grp.inode_bitmap));
        t.metadata_writes <- t.metadata_writes + 2
      end)
    t.groups

(* {2 Superblock} *)

let serialize_superblock t =
  let w = Codec.Writer.create () in
  Codec.Writer.string w magic;
  Codec.Writer.u32 w t.block_bytes;
  Codec.Writer.u64 w t.total_blocks;
  Codec.Writer.u32 w t.cfg.group_blocks;
  Codec.Writer.u32 w t.ngroups;
  Codec.Writer.u32 w t.cfg.inodes_per_group;
  let body = Codec.Writer.contents w in
  let w2 = Codec.Writer.create () in
  Codec.Writer.u32 w2 (Codec.crc body);
  body ^ Codec.Writer.contents w2

let parse_superblock s =
  let r = Codec.Reader.of_string s in
  let m = Codec.Reader.string r in
  if m <> magic then raise (Codec.Corrupt "ffs superblock magic");
  let block_bytes = Codec.Reader.u32 r in
  let total_blocks = Codec.Reader.u64 r in
  let group_blocks = Codec.Reader.u32 r in
  let ngroups = Codec.Reader.u32 r in
  let inodes_per_group = Codec.Reader.u32 r in
  (block_bytes, total_blocks, group_blocks, ngroups, inodes_per_group)

(* {2 Construction} *)

let bitmap_bytes t = (t.cfg.group_blocks + 7) / 8

let make_t ?registry ?(name = "ffs") ~cfg sched driver ~block_bytes
    ~total_blocks ~ngroups () =
  let spb = block_bytes / Driver.sector_bytes driver in
  if spb < 1 || block_bytes mod Driver.sector_bytes driver <> 0 then
    invalid_arg "Ffs: block size must be a multiple of the sector size";
  if cfg.group_blocks <= meta_blocks cfg + 8 then
    invalid_arg "Ffs: group too small for its metadata";
  let c_alloc =
    match registry with
    | Some r ->
      Stats.Registry.register r (Stats.Stat.scalar (name ^ ".alloc"));
      Stats.Registry.counter r (name ^ ".alloc")
    | None -> Counter.null
  in
  let t =
    {
      sched;
      driver;
      c_alloc;
      lname = name;
      cfg;
      block_bytes;
      spb;
      total_blocks;
      ngroups;
      groups = [||];
      inodes = Hashtbl.create 1024;
      indirect_of = Hashtbl.create 64;
      dirty_inodes = Hashtbl.create 64;
      next_dir_group = 0;
      data_writes = 0;
      metadata_writes = 0;
    }
  in
  let groups =
    Array.init ngroups (fun g ->
        {
          base = 1 + (g * cfg.group_blocks);
          block_bitmap = Bytes.make (bitmap_bytes t) '\000';
          inode_bitmap = Bytes.make ((cfg.inodes_per_group + 7) / 8) '\000';
          dirty = false;
          rotor = meta_blocks cfg;
        })
  in
  let t = { t with groups } in
  (* metadata blocks are permanently allocated *)
  Array.iter
    (fun grp ->
      for j = 0 to meta_blocks cfg - 1 do
        bit_set grp.block_bitmap j true
      done)
    t.groups;
  t

let total_blocks_of driver ~block_bytes =
  Driver.total_sectors driver * Driver.sector_bytes driver / block_bytes

(* {2 The Layout.t interface} *)

let to_layout t =
  let now () = Sched.now t.sched in
  let alloc_inode ~kind =
    (* directories round-robin across groups; files join the last
       directory group (a crude stand-in for "near the parent") *)
    let g0 =
      match kind with
      | Inode.Directory ->
        let g = t.next_dir_group in
        t.next_dir_group <- (g + 1) mod t.ngroups;
        g
      | Inode.Regular | Inode.Symlink | Inode.Multimedia -> t.next_dir_group
    in
    let rec scan i =
      if i >= t.ngroups then raise (Errno.Error Errno.ENOSPC)
      else begin
        let g = (g0 + i) mod t.ngroups in
        let grp = t.groups.(g) in
        let rec slot j =
          if j >= t.cfg.inodes_per_group then None
          else if not (bit_get grp.inode_bitmap j) then Some j
          else slot (j + 1)
        in
        match slot 0 with
        | Some j ->
          bit_set grp.inode_bitmap j true;
          grp.dirty <- true;
          (g * t.cfg.inodes_per_group) + j + 1
        | None -> scan (i + 1)
      end
    in
    let ino = scan 0 in
    Counter.record t.c_alloc (float_of_int ino);
    let inode = Inode.make ~ino ~kind ~now:(now ()) in
    Hashtbl.replace t.inodes ino inode;
    Hashtbl.replace t.dirty_inodes ino ();
    inode
  in
  let get_inode ino =
    match Hashtbl.find_opt t.inodes ino with
    | Some i -> Some i
    | None ->
      let g = group_of_ino t ino in
      if g < 0 || g >= t.ngroups then None
      else begin
        let slot = (ino - 1) mod t.cfg.inodes_per_group in
        if not (bit_get t.groups.(g).inode_bitmap slot) then None
        else begin
          let data = read_block_raw t ~addr:(inode_addr t ino) in
          if not (Data.is_real data) then None
          else begin
            let inode, indirect = Inode.deserialize (Data.to_string data) in
            let per = Inode.addrs_per_indirect ~block_bytes:t.block_bytes in
            List.iteri
              (fun k ind_addr ->
                let d = read_block_raw t ~addr:ind_addr in
                let r = Codec.Reader.of_string (Data.to_string d) in
                let count = Codec.Reader.u32 r in
                let base = Inode.ndirect + (k * per) in
                for i = 0 to count - 1 do
                  Inode.set_addr inode (base + i) (Codec.Reader.u64 r - 1)
                done)
              indirect;
            Hashtbl.replace t.inodes ino inode;
            Hashtbl.replace t.indirect_of ino indirect;
            Some inode
          end
        end
      end
  in
  let update_inode (inode : Inode.t) =
    Hashtbl.replace t.inodes inode.Inode.ino inode;
    Hashtbl.replace t.dirty_inodes inode.Inode.ino ()
  in
  let free_inode ino =
    (match get_inode ino with
    | Some inode ->
      List.iter (fun (_, a) -> free_block t a) (Inode.mapped inode)
    | None -> ());
    (match Hashtbl.find_opt t.indirect_of ino with
    | Some addrs -> List.iter (free_block t) addrs
    | None -> ());
    let g = group_of_ino t ino in
    if g >= 0 && g < t.ngroups then begin
      let slot = (ino - 1) mod t.cfg.inodes_per_group in
      bit_set t.groups.(g).inode_bitmap slot false;
      t.groups.(g).dirty <- true
    end;
    Hashtbl.remove t.inodes ino;
    Hashtbl.remove t.indirect_of ino;
    Hashtbl.remove t.dirty_inodes ino
  in
  let read_block (inode : Inode.t) blk =
    match Inode.get_addr inode blk with
    | a when a = Inode.addr_none -> Data.sim t.block_bytes
    | addr -> read_block_raw t ~addr
  in
  (* Vectored read: resolve all addresses first, then fetch each
     physically consecutive run as one request (holes stay in-core). *)
  let read_blocks (inode : Inode.t) ~first ~count =
    let addrs = Array.init count (fun i -> Inode.get_addr inode (first + i)) in
    let parts = ref [] in
    let i = ref 0 in
    while !i < count do
      if addrs.(!i) = Inode.addr_none then begin
        parts := Data.sim t.block_bytes :: !parts;
        incr i
      end
      else begin
        let run = ref 1 in
        while
          !i + !run < count && addrs.(!i + !run) = addrs.(!i) + !run
        do
          incr run
        done;
        parts :=
          Driver.read_exn t.driver
            ~lba:(addrs.(!i) * t.spb)
            ~sectors:(!run * t.spb)
          :: !parts;
        i := !i + !run
      end
    done;
    Data.concat (List.rev !parts)
  in
  (* Vectored write-back: resolve (allocating where needed, so an
     extent of fresh blocks lands contiguously via the rotor), then
     write each physically consecutive run as one gather request. *)
  let write_blocks updates =
    let resolved =
      List.filter_map
        (fun (ino, blk, data) ->
          match get_inode ino with
          | None ->
            Log.warn (fun m -> m "write_blocks: unknown ino %d" ino);
            None
          | Some inode ->
            let addr =
              match Inode.get_addr inode blk with
              | a when a = Inode.addr_none ->
                let a = alloc_block t ~prefer_group:(group_of_ino t ino) in
                Inode.set_addr inode blk a;
                Hashtbl.replace t.dirty_inodes ino ();
                a
              | a -> a
            in
            t.data_writes <- t.data_writes + 1;
            Some (addr, data))
        updates
    in
    let run_addr = ref (-1) and run_len = ref 0 and run_data = ref [] in
    let flush_run () =
      if !run_len > 0 then
        Driver.write_exn t.driver
          ~lba:(!run_addr * t.spb)
          (Data.gather (List.rev !run_data))
    in
    List.iter
      (fun (addr, data) ->
        if !run_len > 0 && addr = !run_addr + !run_len then begin
          run_data := data :: !run_data;
          incr run_len
        end
        else begin
          flush_run ();
          run_addr := addr;
          run_len := 1;
          run_data := [ data ]
        end)
      resolved;
    flush_run ()
  in
  let truncate (inode : Inode.t) ~blocks =
    let dropped = Inode.truncate_blocks inode ~blocks in
    List.iter (free_block t) dropped;
    Hashtbl.replace t.dirty_inodes inode.Inode.ino ()
  in
  let adopt (inode : Inode.t) ~blocks =
    let g = group_of_ino t inode.Inode.ino in
    for i = 0 to blocks - 1 do
      if Inode.get_addr inode i = Inode.addr_none then
        Inode.set_addr inode i (alloc_block t ~prefer_group:g)
    done;
    Hashtbl.replace t.inodes inode.Inode.ino inode;
    Hashtbl.replace t.dirty_inodes inode.Inode.ino ()
  in
  let sync () =
    flush_dirty_inodes t;
    write_group_metadata t
  in
  let layout_stats () =
    [
      ("free_blocks", float_of_int (free_blocks_total t));
      ("data_writes", float_of_int t.data_writes);
      ("metadata_writes", float_of_int t.metadata_writes);
      ("inodes", float_of_int (Hashtbl.length t.inodes));
    ]
  in
  {
    Layout.l_name = t.lname;
    block_bytes = t.block_bytes;
    total_blocks = t.total_blocks;
    alloc_inode = (fun ~kind -> Errno.catch (fun () -> alloc_inode ~kind));
    get_inode = (fun ino -> Errno.catch (fun () -> get_inode ino));
    update_inode;
    free_inode = (fun ino -> Errno.catch (fun () -> free_inode ino));
    read_block =
      (fun inode blk -> Errno.catch (fun () -> read_block inode blk));
    read_blocks =
      (fun inode ~first ~count ->
        Errno.catch (fun () -> read_blocks inode ~first ~count));
    write_blocks = (fun ups -> Errno.catch (fun () -> write_blocks ups));
    truncate =
      (fun inode ~blocks -> Errno.catch (fun () -> truncate inode ~blocks));
    adopt =
      (fun inode ~blocks -> Errno.catch (fun () -> adopt inode ~blocks));
    sync = (fun () -> Errno.catch (fun () -> sync ()));
    free_blocks = (fun () -> free_blocks_total t);
    layout_stats;
  }

let format ?(config = default_config) sched driver ~block_bytes =
  let total_blocks = total_blocks_of driver ~block_bytes in
  let ngroups = (total_blocks - 1) / config.group_blocks in
  if ngroups < 1 then invalid_arg "Ffs.format: disk too small";
  let t =
    make_t ~cfg:config sched driver ~block_bytes ~total_blocks ~ngroups ()
  in
  write_block_raw t ~addr:0 (pad_to_block t (serialize_superblock t));
  write_group_metadata t

let mount ?registry ?(name = "ffs") sched driver =
  let sector = Driver.sector_bytes driver in
  let sb_data = Driver.read_exn driver ~lba:0 ~sectors:(4096 / sector) in
  if not (Data.is_real sb_data) then
    raise (Codec.Corrupt "Ffs.mount: simulated disk holds no metadata; use format_and_mount");
  let block_bytes, total_blocks, group_blocks, ngroups, inodes_per_group =
    parse_superblock (Data.to_string sb_data)
  in
  let cfg = { group_blocks; inodes_per_group } in
  let t =
    make_t ?registry ~name ~cfg sched driver ~block_bytes ~total_blocks
      ~ngroups ()
  in
  Array.iter
    (fun grp ->
      let bm = read_block_raw t ~addr:grp.base in
      let im = read_block_raw t ~addr:(grp.base + 1) in
      (if Data.is_real bm then
         Data.blit ~src:bm ~src_pos:0 ~dst:(Data.Real grp.block_bitmap)
           ~dst_pos:0 ~len:(bitmap_bytes t)
       else raise (Codec.Corrupt "ffs bitmap unreadable"));
      if Data.is_real im then
        Data.blit ~src:im ~src_pos:0 ~dst:(Data.Real grp.inode_bitmap)
          ~dst_pos:0
          ~len:(Bytes.length grp.inode_bitmap)
      else raise (Codec.Corrupt "ffs inode bitmap unreadable"))
    t.groups;
  to_layout t

let format_and_mount ?registry ?(name = "ffs") ?(config = default_config)
    sched driver ~block_bytes =
  let total_blocks = total_blocks_of driver ~block_bytes in
  let ngroups = (total_blocks - 1) / config.group_blocks in
  if ngroups < 1 then invalid_arg "Ffs: disk too small";
  let t =
    make_t ?registry ~name ~cfg:config sched driver ~block_bytes ~total_blocks
      ~ngroups ()
  in
  write_block_raw t ~addr:0 (pad_to_block t (serialize_superblock t));
  write_group_metadata t;
  to_layout t
