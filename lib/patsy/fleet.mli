(** Parallel experiment fleet: fan a matrix of independent experiments
    out over OCaml 5 domains.

    Every {!Experiment.run} builds a private virtual-time scheduler,
    disk farm, cache and statistics registry, so the (trace × policy)
    matrix of the paper's evaluation (§5.1, Figures 2–5) is
    embarrassingly parallel. The fleet runs a fixed pool of worker
    domains over a shared work queue (an atomic job counter); results
    land in per-job slots, so the output order is the input order and is
    independent of scheduling.

    Domain isolation rules:
    - traces are generated {e inside} the worker domain that needs them
      (the [gen] callback), memoized per worker by trace name — the
      generator's PRNG state is never shared; lazily generated sources
      are forced at memoization time, so the cost is never billed to an
      experiment's GC counters;
    - trace record arrays are immutable by convention, so a
      caller-supplied [gen] may return a source over a shared
      pre-loaded array; cursor-backed sources (e.g.
      {!Capfs_trace.Source.sprite_file}) stream each worker's replay
      with O(active window) memory;
    - a job that fails is captured as an [Error] {!failure} in its
      result slot; the worker moves on to the next job and the pool
      never wedges. Typed file-system errors ({!Capfs_core.Errno.Error})
      are kept as {!Failed} codes; anything else is a {!Crashed}
      exception. *)

(** Long-lived pinned worker domains — the substrate both the one-shot
    experiment fleet below and the PFS server's shard pool run on.

    Each worker is one OCaml 5 domain with a one-slot job channel. A job
    submitted with {!Pool.run_on} runs on exactly the worker named, and
    a worker runs one job at a time — so per-domain state (GC counters
    in the fleet, a shard's scheduler and cache in the PFS server) is
    never shared or migrated. Workers survive between jobs: a server
    shard parks a [Sched.run] service loop on its worker for the whole
    life of the process. *)
module Pool : sig
  type t

  (** [create ~size] spawns [size] worker domains, all idle. Raises
      [Invalid_argument] when [size < 1]. Counting the calling domain,
      keep [size < Domain.recommended_domain_count] for true
      parallelism. *)
  val create : size:int -> t

  val size : t -> int

  (** [run_on t i f] starts [f ()] on worker [i]. Raises
      [Invalid_argument] if that worker is still running a previous job
      — the pool hands out {e placement}, not queueing; callers that
      want a queue put one in [f]'s closure (the PFS server's ingress
      queues). A job's uncaught exception is discarded: jobs must
      report failure through their own channel (the fleet captures
      per-job failures; the server's shard loops trap their own). *)
  val run_on : t -> int -> (unit -> unit) -> unit

  (** Block until every worker is idle. *)
  val join : t -> unit

  (** {!join}, then retire every worker domain. The pool must not be
      used afterwards. *)
  val shutdown : t -> unit
end

type job = {
  label : string;             (** display / report key, unique per job *)
  trace : string;             (** trace name, passed to [gen] *)
  config : Experiment.config;
}

(** Why a job produced no outcome: a typed file-system error that
    escaped the experiment (e.g. [ENOSPC] filling a tiny volume, [EIO]
    from an unlucky fault plan), or an unclassified exception — a real
    bug. *)
type failure = Failed of Capfs_core.Errno.t | Crashed of exn

val pp_failure : Format.formatter -> failure -> unit

type job_result = {
  job : job;
  result : (Experiment.outcome, failure) result;
  wall_s : float;             (** host wall-clock seconds for this job *)
  minor_words : float;
      (** words allocated in the worker domain's minor heap during the
          experiment (trace generation excluded) — divide by the
          operation count for the allocation rate of the replay loop *)
  promoted_words : float;     (** of those, words promoted to the major heap *)
  major_collections : int;    (** major GC cycles during the experiment *)
  worker : int;               (** index of the worker domain that ran it *)
}

(** [Domain.recommended_domain_count ()] — the default worker count. *)
val default_jobs : unit -> int

(** The canonical label of a matrix cell: ["<trace>/<policy-name>"]. *)
val matrix_label : trace:string -> Experiment.policy -> string

(** [run_jobs ~jobs ~gen jl] runs every job of [jl] on a pool of [jobs]
    worker domains ([jobs <= 1] runs inline on the calling domain, with
    identical results — experiments depend only on their config, trace
    and seed, never on which domain runs them). [gen name] must produce
    the trace for [name]; it is called from worker domains and memoized
    per worker. Results are returned in job order. *)
val run_jobs :
  ?jobs:int ->
  gen:(string -> Capfs_trace.Source.t) ->
  job list ->
  job_result list

(** [run_matrix ~jobs ~gen ~config pairs] — the (trace × policy) matrix:
    one job per pair, configured by [config policy] (default
    {!Experiment.default}), labelled with {!matrix_label}. *)
val run_matrix :
  ?jobs:int ->
  ?config:(Experiment.policy -> Experiment.config) ->
  gen:(string -> Capfs_trace.Source.t) ->
  (string * Experiment.policy) list ->
  job_result list

(** Outcome of a result, re-raising the captured failure on [Error]
    ({!Failed} codes re-raise as {!Capfs_core.Errno.Error}). *)
val outcome_exn : job_result -> Experiment.outcome

(** [failures results] — the jobs that failed, with their failures. *)
val failures : job_result list -> (job * failure) list

(** [merged_events results] — the event traces of the successful jobs,
    merged into one stream tagged with each event's job index. The order
    is (virtual time, job index, sequence number) and depends only on
    the jobs' configs and seeds — never on [?jobs] or on which domain
    ran what — so a [-j 1] and a [-j 8] run of the same matrix merge to
    identical streams. *)
val merged_events :
  job_result list -> (int * Capfs_obs.Event.t) list
