lib/stats/interval.mli: Format Welford
