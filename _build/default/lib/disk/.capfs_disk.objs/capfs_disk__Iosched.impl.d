lib/disk/iosched.ml: Geometry Iorequest List Stdlib
