type t = {
  on : bool;
  cap : int;
  buf : Event.t array; (* ring; slot i holds emission number (pushed - k) *)
  mutable pushed : int; (* total events ever emitted *)
  mutable base : int; (* emissions forgotten by [clear] *)
  mutable seq : int;
}

let dummy =
  { Event.time = 0.; seq = 0; kind = Event.Wake { tid = 0; thread = "" } }

let null = { on = false; cap = 0; buf = [||]; pushed = 0; base = 0; seq = 0 }

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity < 1";
  { on = true; cap = capacity; buf = Array.make capacity dummy; pushed = 0;
    base = 0; seq = 0 }

let enabled t = t.on

let emit t ~time kind =
  if t.on then begin
    t.seq <- t.seq + 1;
    t.buf.(t.pushed mod t.cap) <- { Event.time; seq = t.seq; kind };
    t.pushed <- t.pushed + 1
  end

let length t = Stdlib.min (t.pushed - t.base) t.cap
let capacity t = t.cap
let dropped t = t.pushed - t.base - length t

let events t =
  let n = length t in
  List.init n (fun i -> t.buf.((t.pushed - n + i) mod t.cap))

let clear t = t.base <- t.pushed
