(** The server half of Sprite-style client caching (§3 future work).

    "By using client caching we hope to reduce the amount of network
    traffic and file latency" — with Sprite's consistency protocol
    (Nelson, Welch & Ousterhout 1988):

    - every write-open bumps the file's {e version}; a client whose
      cached copy carries an older version invalidates it on open
      (sequential write-sharing);
    - when one client has a file open for writing while another opens
      it, caching of that file is {e disabled} on every client and all
      I/O goes through the server (concurrent write-sharing);
    - dirty client blocks are recalled on demand when another client
      opens the file before the writer closed it.

    The server wraps the ordinary abstract client interface, so the same
    PFS/Patsy stack sits underneath unchanged. *)

type t

type open_mode = Read | Write

(** What the client must do with its cache after an open. *)
type open_grant = {
  g_ino : int;
  g_version : int;   (** invalidate the cached copy if yours is older *)
  g_cacheable : bool; (** false: concurrent write sharing, bypass cache *)
  g_size : int;
}

val create :
  ?registry:Capfs_stats.Registry.t -> Capfs.Client.t -> Netlink.t -> t

val block_bytes : t -> int

(** The scheduler of the file system behind the server; clients use it
    to timestamp trace events with the shared virtual clock. *)
val sched : t -> Capfs_sched.Sched.t

(** Attach a client: [recall] asks it to write back and drop its dirty
    blocks of the file; [disable] tells it to stop caching the file.
    Returns the client's server-side id (pass to the rpcs). *)
val attach :
  t ->
  client_id:int ->
  recall:(ino:int -> unit) ->
  disable:(ino:int -> unit) ->
  unit

(** {2 RPC entry points} (each charges the network link) *)

val rpc_open : t -> client_id:int -> string -> open_mode -> open_grant
val rpc_close : t -> client_id:int -> ino:int -> unit

(** [rpc_read_block t ~ino idx] — one file block. *)
val rpc_read_block : t -> client_id:int -> ino:int -> int -> Capfs_disk.Data.t

val rpc_write_block :
  t -> client_id:int -> ino:int -> int -> Capfs_disk.Data.t -> unit

(** [rpc_set_size] propagates a client-side size change (append). *)
val rpc_set_size : t -> client_id:int -> ino:int -> int -> unit

(** Number of files currently under the concurrent-write-sharing
    (uncacheable) regime. *)
val uncacheable_files : t -> int
