lib/pfs/file_blockdev.ml: Bytes Capfs_disk Capfs_sched Hashtbl Unix
