module Sched = Capfs_sched.Sched
module Sync = Capfs_sched.Sync

let header_bytes = 160

type t = {
  sched : Sched.t;
  bandwidth : float;
  latency : float;
  medium : Sync.Mutex.t;
  mutable carried : int;
  c_transfer : Capfs_stats.Counter.t;
  nname : string;
}

let create ?registry ?(name = "net") ~bandwidth_bytes_per_sec ~latency sched =
  if bandwidth_bytes_per_sec <= 0. then invalid_arg "Netlink.create: bandwidth";
  let c_transfer =
    match registry with
    | Some r ->
      Capfs_stats.Registry.register r
        (Capfs_stats.Stat.scalar (name ^ ".transfer"));
      Capfs_stats.Registry.counter r (name ^ ".transfer")
    | None -> Capfs_stats.Counter.null
  in
  {
    sched;
    bandwidth = bandwidth_bytes_per_sec;
    latency;
    medium = Sync.Mutex.create ~name sched;
    carried = 0;
    c_transfer;
    nname = name;
  }

let ethernet_10 ?registry sched =
  create ?registry ~name:"ether10"
    ~bandwidth_bytes_per_sec:(10.0e6 /. 8.)
    ~latency:0.5e-3 sched

module Frame = struct
  module Errno = Capfs_core.Errno

  let header_bytes = 16
  let magic = 0xCAF5
  let default_max_payload = 1 lsl 20

  type t = { req_id : int; opcode : int; payload : string }

  (* header layout, little-endian: magic u16 | opcode u16 | req_id u32 |
     payload_len u32 | reserved u32 (zero) *)
  let blit_header b off ~req_id ~opcode ~payload_len =
    Bytes.set_uint16_le b off magic;
    Bytes.set_uint16_le b (off + 2) (opcode land 0xffff);
    Bytes.set_int32_le b (off + 4) (Int32.of_int req_id);
    Bytes.set_int32_le b (off + 8) (Int32.of_int payload_len);
    Bytes.set_int32_le b (off + 12) 0l

  let to_bytes f =
    let b = Bytes.create (header_bytes + String.length f.payload) in
    blit_header b 0 ~req_id:f.req_id ~opcode:f.opcode
      ~payload_len:(String.length f.payload);
    Bytes.blit_string f.payload 0 b header_bytes (String.length f.payload);
    b

  (* Retry-on-EINTR write loop; short writes restart at the cut. With
     [sched], EAGAIN on a non-blocking fd backs off through the
     scheduler so the writing fibre never spins a whole domain. Returns
     the number of write(2) calls that moved bytes — the gather writer's
     syscall counter. *)
  let write_bytes ?sched fd b ~len =
    let rec go off syscalls =
      if off >= len then Ok syscalls
      else
        match Unix.write fd b off (len - off) with
        | 0 -> Error Errno.EIO
        | k -> go (off + k) (syscalls + 1)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off syscalls
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> (
          match sched with
          | Some s ->
            Capfs_sched.Sched.sleep s 0.0002;
            go off syscalls
          | None -> Error Errno.EAGAIN)
        | exception Unix.Unix_error (e, _, _) -> Error (Errno.of_unix e)
    in
    go 0 0

  let write ?sched fd f =
    let b = to_bytes f in
    match write_bytes ?sched fd b ~len:(Bytes.length b) with
    | Ok _ -> Ok ()
    | Error _ as e -> e

  (* Reassembly loop shared by the blocking and fibre readers: [wait]
     is what to do when the fd has no bytes yet (block, or park the
     fibre on the scheduler's readiness list). Returns [Ok None] on a
     clean EOF at a frame boundary; EOF mid-header or mid-payload is a
     torn frame — [Error EIO]. *)
  let read_into ~wait fd =
    let read_exact b off len ~started =
      let rec go off len started =
        if len = 0 then Ok true
        else
          match Unix.read fd b off len with
          | 0 -> if started then Error Errno.EIO else Ok false
          | k -> go (off + k) (len - k) true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len started
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            wait ();
            go off len started
          | exception Unix.Unix_error (e, _, _) -> Error (Errno.of_unix e)
      in
      go off len started
    in
    fun ~max_payload ->
      let hdr = Bytes.create header_bytes in
      match read_exact hdr 0 header_bytes ~started:false with
      | Error _ as e -> e
      | Ok false -> Ok None
      | Ok true ->
        if Bytes.get_uint16_le hdr 0 <> magic then Error Errno.EINVAL
        else begin
          let opcode = Bytes.get_uint16_le hdr 2 in
          (* u32: mask off the sign extension so ids in the reserved
             high range (server pushes) survive the round trip *)
          let req_id =
            Int32.to_int (Bytes.get_int32_le hdr 4) land 0xffffffff
          in
          let len = Int32.to_int (Bytes.get_int32_le hdr 8) in
          if len < 0 || len > max_payload then Error Errno.EINVAL
          else
            let pb = Bytes.create len in
            match read_exact pb 0 len ~started:true with
            | Error _ as e -> e
            | Ok _ ->
              Ok
                (Some
                   { req_id; opcode; payload = Bytes.unsafe_to_string pb })
        end

  let read ?(max_payload = default_max_payload) fd =
    (* blocking fd: an EAGAIN here means someone marked it non-blocking
       without a scheduler to park on — yielding the CPU briefly is the
       least-wrong answer *)
    read_into ~wait:(fun () -> ignore (Unix.select [ fd ] [] [] 0.05)) fd
      ~max_payload

  let read_sched ?(max_payload = default_max_payload) sched fd =
    read_into
      ~wait:(fun () -> Capfs_sched.Sched.wait_readable sched fd)
      fd ~max_payload

  (* Incremental reassembly over caller-supplied chunks, for readers that
     drain an fd opportunistically (the cached client polling for pushed
     invalidations) instead of parking on it. Protocol errors are sticky:
     once the stream desynchronizes there is no resync point. *)
  module Splitter = struct
    type t = {
      mutable buf : Bytes.t;
      mutable start : int; (* first unconsumed byte *)
      mutable fill : int; (* one past the last byte *)
      max_payload : int;
      mutable failed : Errno.t option;
    }

    let create ?(max_payload = default_max_payload) () =
      { buf = Bytes.create 4096; start = 0; fill = 0; max_payload;
        failed = None }

    let avail t = t.fill - t.start

    let ensure t n =
      if t.fill + n > Bytes.length t.buf then begin
        let live = avail t in
        if live + n <= Bytes.length t.buf then begin
          Bytes.blit t.buf t.start t.buf 0 live;
          t.start <- 0;
          t.fill <- live
        end
        else begin
          let cap = ref (Bytes.length t.buf) in
          while live + n > !cap do
            cap := !cap * 2
          done;
          let nb = Bytes.create !cap in
          Bytes.blit t.buf t.start nb 0 live;
          t.buf <- nb;
          t.start <- 0;
          t.fill <- live
        end
      end

    let feed t b off len =
      if off < 0 || len < 0 || off + len > Bytes.length b then
        invalid_arg "Splitter.feed";
      ensure t len;
      Bytes.blit b off t.buf t.fill len;
      t.fill <- t.fill + len

    let pop t =
      match t.failed with
      | Some e -> Error e
      | None ->
        if avail t < header_bytes then Ok None
        else begin
          let b = t.buf and o = t.start in
          if Bytes.get_uint16_le b o <> magic then begin
            t.failed <- Some Errno.EINVAL;
            Error Errno.EINVAL
          end
          else begin
            let opcode = Bytes.get_uint16_le b (o + 2) in
            (* u32, like [read_into]: no sign extension on req_id *)
            let req_id =
              Int32.to_int (Bytes.get_int32_le b (o + 4)) land 0xffffffff
            in
            let len = Int32.to_int (Bytes.get_int32_le b (o + 8)) in
            if len < 0 || len > t.max_payload then begin
              t.failed <- Some Errno.EINVAL;
              Error Errno.EINVAL
            end
            else if avail t < header_bytes + len then Ok None
            else begin
              let payload = Bytes.sub_string b (o + header_bytes) len in
              t.start <- t.start + header_bytes + len;
              if t.start = t.fill then begin
                t.start <- 0;
                t.fill <- 0
              end;
              Ok (Some { req_id; opcode; payload })
            end
          end
        end
  end
end

let transfer t ~bytes =
  if bytes < 0 then invalid_arg "Netlink.transfer: negative size";
  let wire = bytes + header_bytes in
  Sync.Mutex.with_lock t.medium (fun () ->
      let dt = t.latency +. (float_of_int wire /. t.bandwidth) in
      Sched.sleep t.sched dt;
      t.carried <- t.carried + bytes;
      Capfs_stats.Counter.record t.c_transfer dt)

let bytes_carried t = t.carried
