(* Tests for the disk substrate: geometry, seek curves, the simulated
   HP97560 mechanics, the SCSI-2 bus, queue-scheduling policies and the
   driver. *)

open Capfs_disk
module Sched = Capfs_sched.Sched

let vsched () = Sched.create ~clock:`Virtual ()

let run_sim f =
  let s = vsched () in
  let result = ref None in
  ignore (Sched.spawn s (fun () -> result := Some (f s)));
  Sched.run s;
  match !result with Some v -> v | None -> Alcotest.fail "fibre never ran"

(* Data *)

let test_data_real_roundtrip () =
  let d = Data.of_string "hello world" in
  Alcotest.(check int) "length" 11 (Data.length d);
  Alcotest.(check string) "contents" "hello world" (Data.to_string d);
  let s = Data.sub d ~pos:6 ~len:5 in
  Alcotest.(check string) "sub" "world" (Data.to_string s)

let test_data_sim_behaves () =
  let d = Data.sim 4096 in
  Alcotest.(check int) "length" 4096 (Data.length d);
  Alcotest.(check bool) "not real" false (Data.is_real d);
  let s = Data.sub d ~pos:100 ~len:50 in
  Alcotest.(check int) "sub length" 50 (Data.length s);
  Alcotest.(check bool) "sub stays sim" false (Data.is_real s)

let test_data_blit_mixed () =
  let dst = Data.real 8 in
  Data.blit ~src:(Data.of_string "abcd") ~src_pos:0 ~dst ~dst_pos:2 ~len:4;
  Alcotest.(check string) "real blit" "\000\000abcd\000\000" (Data.to_string dst);
  Data.blit ~src:(Data.sim 4) ~src_pos:0 ~dst ~dst_pos:2 ~len:4;
  Alcotest.(check string) "sim source zero-fills" "\000\000\000\000\000\000\000\000"
    (Data.to_string dst)

let test_data_concat () =
  let c = Data.concat [ Data.of_string "ab"; Data.of_string "cd" ] in
  Alcotest.(check string) "real concat" "abcd" (Data.to_string c);
  let c2 = Data.concat [ Data.of_string "ab"; Data.sim 2 ] in
  Alcotest.(check bool) "mixed concat is sim" false (Data.is_real c2);
  Alcotest.(check int) "mixed length" 4 (Data.length c2)

let test_data_bounds_checked () =
  let d = Data.sim 10 in
  (try
     ignore (Data.sub d ~pos:8 ~len:5);
     Alcotest.fail "sub out of range must raise"
   with Invalid_argument _ -> ())

(* Geometry *)

let tiny_geom =
  Geometry.v ~cylinders:4 ~heads:2 ~sectors_per_track:8 ~sector_bytes:512
    ~track_skew:2 ~cylinder_skew:3 ()

let test_geometry_capacity () =
  Alcotest.(check int) "sectors" 64 (Geometry.capacity_sectors tiny_geom);
  Alcotest.(check int) "bytes" (64 * 512) (Geometry.capacity_bytes tiny_geom)

let test_geometry_mapping_origin () =
  let p = Geometry.pos_of_lba tiny_geom 0 in
  Alcotest.(check int) "cyl" 0 p.Geometry.cylinder;
  Alcotest.(check int) "head" 0 p.Geometry.head;
  Alcotest.(check int) "angle" 0 p.Geometry.angle

let test_geometry_track_skew () =
  (* First sector of track 1 (cyl 0, head 1) is rotated by track_skew. *)
  let p = Geometry.pos_of_lba tiny_geom 8 in
  Alcotest.(check int) "head" 1 p.Geometry.head;
  Alcotest.(check int) "angle includes skew" 2 p.Geometry.angle

let prop_geometry_bijective =
  QCheck.Test.make ~name:"lba -> pos -> lba is the identity" ~count:500
    QCheck.(int_range 0 (Geometry.capacity_sectors tiny_geom - 1))
    (fun lba ->
      Geometry.lba_of_pos tiny_geom (Geometry.pos_of_lba tiny_geom lba) = lba)

let prop_geometry_hp97560_bijective =
  let g = Disk_model.hp97560.Disk_model.geometry in
  QCheck.Test.make ~name:"hp97560 mapping bijective" ~count:500
    QCheck.(int_range 0 (Geometry.capacity_sectors g - 1))
    (fun lba -> Geometry.lba_of_pos g (Geometry.pos_of_lba g lba) = lba)

let test_geometry_out_of_range () =
  (try
     ignore (Geometry.pos_of_lba tiny_geom 64);
     Alcotest.fail "must raise"
   with Invalid_argument _ -> ())

(* Seek *)

let test_seek_zero_distance_free () =
  Alcotest.(check (float 0.)) "hp97560" 0. (Seek.time Seek.hp97560 ~distance:0);
  Alcotest.(check (float 0.)) "constant" 0.
    (Seek.time (Seek.constant 0.01) ~distance:0)

let test_seek_hp97560_curve () =
  (* Below the knee: 3.24 + 0.400 sqrt(d) ms. *)
  let t100 = Seek.time Seek.hp97560 ~distance:100 in
  Alcotest.(check (float 1e-9)) "short seek" ((3.24 +. (0.400 *. 10.)) /. 1000.)
    t100;
  (* Above the knee: 8.00 + 0.008 d ms. *)
  let t1000 = Seek.time Seek.hp97560 ~distance:1000 in
  Alcotest.(check (float 1e-9)) "long seek" ((8.00 +. (0.008 *. 1000.)) /. 1000.)
    t1000

let prop_seek_monotone =
  QCheck.Test.make ~name:"hp97560 seek time is monotone in distance"
    ~count:300
    QCheck.(pair (int_range 1 1960) (int_range 1 1960))
    (fun (d1, d2) ->
      let lo = Stdlib.min d1 d2 and hi = Stdlib.max d1 d2 in
      Seek.time Seek.hp97560 ~distance:lo
      <= Seek.time Seek.hp97560 ~distance:hi +. 1e-12)

let test_seek_linear_endpoints () =
  let m = Seek.linear ~single:0.001 ~max:0.02 ~cylinders:100 in
  Alcotest.(check (float 1e-12)) "single" 0.001 (Seek.time m ~distance:1);
  Alcotest.(check (float 1e-12)) "full stroke" 0.02 (Seek.time m ~distance:99)

(* Disk model *)

let test_hp97560_derived_quantities () =
  let m = Disk_model.hp97560 in
  let rot = Disk_model.rotation_time m in
  (* 4002 rpm -> 14.99 ms per revolution: the paper's 17 ms bump is
     rotation plus the 2 ms controller overhead. *)
  if rot < 0.0149 || rot > 0.0151 then Alcotest.failf "rotation %.6f" rot;
  let rate = Disk_model.media_rate m in
  if rate < 2.0e6 || rate > 3.0e6 then
    Alcotest.failf "media rate %.0f implausible for an HP97560" rate;
  Alcotest.(check int) "capacity ~1.3GB"
    (1962 * 19 * 72 * 512)
    (Geometry.capacity_bytes m.Disk_model.geometry)

(* Bus *)

let test_bus_transfer_time () =
  let elapsed =
    run_sim (fun s ->
        let bus = Bus.create ~name:"b" ~rate_bytes_per_sec:10.0e6
            ~arbitration:0. ~phase_overhead:0. s in
        let t0 = Sched.now s in
        Bus.transfer bus ~bytes:1_000_000;
        Sched.now s -. t0)
  in
  Alcotest.(check (float 1e-9)) "1MB at 10MB/s" 0.1 elapsed

let test_bus_contention_serializes () =
  let s = vsched () in
  let bus = Bus.create ~name:"b" ~rate_bytes_per_sec:1.0e6 ~arbitration:0.
      ~phase_overhead:0. s in
  let finished = ref [] in
  for i = 1 to 3 do
    ignore
      (Sched.spawn s (fun () ->
           Bus.transfer bus ~bytes:100_000;
           finished := (i, Sched.now s) :: !finished))
  done;
  Sched.run s;
  let times = List.map snd !finished |> List.sort compare in
  Alcotest.(check (list (float 1e-9))) "serialized at 0.1s each"
    [ 0.1; 0.2; 0.3 ] times;
  Alcotest.(check (float 1e-9)) "busy accounting" 0.3 (Bus.busy_seconds bus)

(* Iosched policies *)

let flat_geom =
  Geometry.v ~cylinders:100 ~heads:1 ~sectors_per_track:1 ~sector_bytes:512 ()

let req s cylinder =
  Iorequest.make s Iorequest.Read ~lba:cylinder ~sectors:1 ()

let drain_policy p ~start =
  let rec go cur acc =
    match Iosched.next p ~current_cyl:cur with
    | None -> List.rev acc
    | Some r ->
      let c = r.Iorequest.lba in
      go c (c :: acc)
  in
  go start []

let test_fcfs_order () =
  run_sim (fun s ->
      let p = Iosched.fcfs flat_geom in
      List.iter (fun c -> Iosched.add p (req s c)) [ 50; 10; 90 ];
      Alcotest.(check (list int)) "fcfs" [ 50; 10; 90 ]
        (drain_policy p ~start:0))

let test_sstf_order () =
  run_sim (fun s ->
      let p = Iosched.sstf flat_geom in
      List.iter (fun c -> Iosched.add p (req s c)) [ 50; 10; 90; 45 ];
      Alcotest.(check (list int)) "sstf from 40" [ 45; 50; 10; 90 ]
        (drain_policy p ~start:40))

let test_look_reverses () =
  run_sim (fun s ->
      let p = Iosched.look flat_geom in
      List.iter (fun c -> Iosched.add p (req s c)) [ 50; 10; 90; 45 ];
      (* travelling up from 40: 45, 50, 90, then reverse to 10 *)
      Alcotest.(check (list int)) "look" [ 45; 50; 90; 10 ]
        (drain_policy p ~start:40))

let test_clook_wraps () =
  run_sim (fun s ->
      let p = Iosched.clook flat_geom in
      List.iter (fun c -> Iosched.add p (req s c)) [ 50; 10; 90; 45 ];
      (* upward from 40: 45, 50, 90; wrap to lowest: 10 *)
      Alcotest.(check (list int)) "clook" [ 45; 50; 90; 10 ]
        (drain_policy p ~start:40);
      (* upward from 60 with all below: wrap immediately *)
      List.iter (fun c -> Iosched.add p (req s c)) [ 30; 20 ];
      Alcotest.(check (list int)) "clook wrap" [ 20; 30 ]
        (drain_policy p ~start:60))

let test_scan_edf_deadlines_first () =
  run_sim (fun s ->
      let p = Iosched.scan_edf flat_geom in
      let r1 = Iorequest.make s Iorequest.Read ~lba:80 ~sectors:1
          ~deadline:5. () in
      let r2 = Iorequest.make s Iorequest.Read ~lba:10 ~sectors:1
          ~deadline:1. () in
      let r3 = Iorequest.make s Iorequest.Read ~lba:20 ~sectors:1 () in
      List.iter (Iosched.add p) [ r1; r2; r3 ];
      Alcotest.(check (list int)) "edf order" [ 10; 80; 20 ]
        (drain_policy p ~start:0))

let test_policy_tie_break_fifo () =
  run_sim (fun s ->
      let p = Iosched.sstf flat_geom in
      let a = req s 30 and b = req s 30 in
      Iosched.add p a;
      Iosched.add p b;
      (match Iosched.next p ~current_cyl:30 with
      | Some r -> Alcotest.(check int) "first submitted first" a.Iorequest.id
                    r.Iorequest.id
      | None -> Alcotest.fail "expected a request"))

let test_by_name_roundtrip () =
  List.iter
    (fun n ->
      let p = Iosched.by_name flat_geom n in
      Alcotest.(check string) "name" n (Iosched.name p))
    Iosched.known_policies;
  try
    ignore (Iosched.by_name flat_geom "elevator-of-doom");
    Alcotest.fail "unknown policy must raise"
  with Invalid_argument _ -> ()

(* Sim_disk mechanics *)

let hp_setup ?(backing = false) s =
  let bus = Bus.scsi2 s in
  let disk = Sim_disk.create ~backing s Disk_model.hp97560 bus in
  disk

let test_disk_read_latency_band () =
  let latency =
    run_sim (fun s ->
        let disk = hp_setup s in
        let req = Iorequest.make s Iorequest.Read ~lba:123_456 ~sectors:8 () in
        Sim_disk.execute disk ~queue_empty:(fun () -> false) req;
        Iorequest.response_time req)
  in
  (* controller 2ms + seek (<=23ms) + rotation (<15ms) + transfer: a
     single 4KB read must land in the paper's 2..40ms band. *)
  if latency < 0.002 || latency > 0.040 then
    Alcotest.failf "read latency %.4f outside [2ms, 40ms]" latency

let test_disk_cache_hit_is_fast () =
  let miss, hit =
    run_sim (fun s ->
        let disk = hp_setup s in
        let r1 = Iorequest.make s Iorequest.Read ~lba:5000 ~sectors:8 () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) r1;
        let t1 = Iorequest.response_time r1 in
        (* same sectors again: served from the disk cache *)
        let r2 = Iorequest.make s Iorequest.Read ~lba:5000 ~sectors:8 () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) r2;
        (t1, Iorequest.response_time r2))
  in
  if hit >= miss /. 2. then
    Alcotest.failf "cache hit %.5f not much faster than miss %.5f" hit miss;
  (* hit = controller + bus transfer only: ~2.5ms *)
  if hit > 0.004 then Alcotest.failf "cache hit %.5f too slow" hit

let test_disk_read_ahead_serves_next () =
  let second =
    run_sim (fun s ->
        let disk = hp_setup s in
        let r1 = Iorequest.make s Iorequest.Read ~lba:5000 ~sectors:8 () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) r1;
        (* the next 4KB (8 sectors) were prefetched *)
        let r2 = Iorequest.make s Iorequest.Read ~lba:5008 ~sectors:8 () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) r2;
        Iorequest.response_time r2)
  in
  if second > 0.004 then
    Alcotest.failf "prefetched read cost %.5f (expected cache hit)" second

let test_disk_immediate_report_write () =
  let reported, mechanical_done =
    run_sim (fun s ->
        let disk = hp_setup s in
        let data = Data.sim 4096 in
        let req =
          Iorequest.make s Iorequest.Write ~lba:9999 ~sectors:8 ~data ()
        in
        let t0 = Sched.now s in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) req;
        (req.Iorequest.completed_at -. t0, Sched.now s -. t0))
  in
  (* completion reported after controller + bus (~2.5ms); the mechanical
     write keeps the disk busy for a seek + rotation more. *)
  if reported > 0.005 then
    Alcotest.failf "immediate report took %.5f" reported;
  if mechanical_done <= reported then
    Alcotest.fail "mechanical work should continue after the report"

let test_disk_write_then_read_backed () =
  let contents =
    run_sim (fun s ->
        let disk = hp_setup ~backing:true s in
        let data = Data.of_string (String.make 512 'x') in
        let w = Iorequest.make s Iorequest.Write ~lba:77 ~sectors:1 ~data () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) w;
        let r = Iorequest.make s Iorequest.Read ~lba:77 ~sectors:1 () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) r;
        match r.Iorequest.data with
        | Some d -> Data.to_string d
        | None -> "")
  in
  Alcotest.(check string) "read back" (String.make 512 'x') contents

let test_disk_write_invalidates_cache () =
  let second_hit =
    run_sim (fun s ->
        let disk = hp_setup s in
        let r1 = Iorequest.make s Iorequest.Read ~lba:5000 ~sectors:8 () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) r1;
        let w = Iorequest.make s Iorequest.Write ~lba:5004 ~sectors:1
            ~data:(Data.sim 512) () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) w;
        let r2 = Iorequest.make s Iorequest.Read ~lba:5000 ~sectors:8 () in
        Sim_disk.execute disk ~queue_empty:(fun () -> true) r2;
        Iorequest.response_time r2)
  in
  if second_hit < 0.004 then
    Alcotest.fail "overlapping write must invalidate the disk cache"

let test_disk_sequential_beats_random () =
  let seq, rand =
    run_sim (fun s ->
        let disk = hp_setup s in
        let t0 = Sched.now s in
        for i = 0 to 19 do
          let r = Iorequest.make s Iorequest.Read ~lba:(100_000 + (i * 8))
              ~sectors:8 () in
          Sim_disk.execute disk ~queue_empty:(fun () -> false) r
        done;
        let seq = Sched.now s -. t0 in
        let prng = Capfs_stats.Prng.create ~seed:9 in
        let t1 = Sched.now s in
        for _ = 0 to 19 do
          let lba = Capfs_stats.Prng.int prng 2_000_000 in
          let r = Iorequest.make s Iorequest.Read ~lba ~sectors:8 () in
          Sim_disk.execute disk ~queue_empty:(fun () -> false) r
        done;
        (seq, Sched.now s -. t1))
  in
  if seq >= rand then
    Alcotest.failf "sequential %.4f should beat random %.4f" seq rand

let test_disk_bounds_check () =
  run_sim (fun s ->
      let disk = hp_setup s in
      let beyond = Sim_disk.capacity_sectors disk - 2 in
      let r = Iorequest.make s Iorequest.Read ~lba:beyond ~sectors:8 () in
      try
        Sim_disk.execute disk ~queue_empty:(fun () -> true) r;
        Alcotest.fail "out-of-range request must raise"
      with Invalid_argument _ -> ())

(* Driver *)

let test_driver_blocking_roundtrip () =
  let s = vsched () in
  let mem = Driver.mem_transport ~sector_bytes:512 ~total_sectors:1024 s () in
  let drv = Driver.create s mem in
  ignore
    (Sched.spawn s (fun () ->
         Driver.write_exn drv ~lba:10 (Data.of_string (String.make 1024 'z'));
         let d = Driver.read_exn drv ~lba:10 ~sectors:2 in
         Alcotest.(check string) "roundtrip" (String.make 1024 'z')
           (Data.to_string d)));
  Sched.run s

let test_driver_parallel_requests_all_complete () =
  let s = vsched () in
  let bus = Bus.scsi2 s in
  let disk = Sim_disk.create s Disk_model.hp97560 bus in
  let drv = Driver.create s (Driver.sim_transport disk) in
  let done_count = ref 0 in
  for i = 0 to 19 do
    ignore
      (Sched.spawn s (fun () ->
           ignore (Driver.read_exn drv ~lba:(i * 5000) ~sectors:8);
           incr done_count))
  done;
  Sched.run s;
  Alcotest.(check int) "all 20 served" 20 !done_count

let test_driver_queueing_increases_latency () =
  (* One lone request vs. the same request behind 15 others: queueing
     delay must show up — this is the effect the whole paper hunts. *)
  let lone =
    run_sim (fun s ->
        let bus = Bus.scsi2 s in
        let disk = Sim_disk.create s Disk_model.hp97560 bus in
        let drv = Driver.create s (Driver.sim_transport disk) in
        let t0 = Sched.now s in
        ignore (Driver.read_exn drv ~lba:1_000_000 ~sectors:8);
        Sched.now s -. t0)
  in
  let s = vsched () in
  let bus = Bus.scsi2 s in
  let disk = Sim_disk.create s Disk_model.hp97560 bus in
  let drv = Driver.create s (Driver.sim_transport disk) in
  let queued = ref 0. in
  let prng = Capfs_stats.Prng.create ~seed:5 in
  for _ = 0 to 14 do
    let lba = Capfs_stats.Prng.int prng 2_000_000 in
    ignore (Sched.spawn s (fun () -> ignore (Driver.read_exn drv ~lba ~sectors:8)))
  done;
  ignore
    (Sched.spawn s (fun () ->
         let t0 = Sched.now s in
         ignore (Driver.read_exn drv ~lba:1_000_000 ~sectors:8);
         queued := Sched.now s -. t0));
  Sched.run s;
  if !queued <= lone *. 2. then
    Alcotest.failf "queued %.4f vs lone %.4f: expected queueing delay"
      !queued lone

let test_driver_drain () =
  let s = vsched () in
  let bus = Bus.scsi2 s in
  let disk = Sim_disk.create s Disk_model.hp97560 bus in
  let drv = Driver.create s (Driver.sim_transport disk) in
  let drained_at = ref 0. and last_done = ref 0. in
  for i = 0 to 9 do
    ignore
      (Sched.spawn s (fun () ->
           ignore (Driver.read_exn drv ~lba:(i * 10_000) ~sectors:8);
           last_done := Stdlib.max !last_done (Sched.now s)))
  done;
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 0.001;
         Driver.drain drv;
         drained_at := Sched.now s));
  Sched.run s;
  if !drained_at +. 1e-9 < !last_done then
    Alcotest.failf "drain returned at %.4f before last completion %.4f"
      !drained_at !last_done

(* Request merging: two adjacent writes queued behind a busy device go
   down as one scatter-gather request, and the payload lands intact. *)
let test_driver_merges_adjacent_writes () =
  let s = vsched () in
  let mem =
    Driver.mem_transport ~latency:0.01 ~sector_bytes:512 ~total_sectors:1024 s
      ()
  in
  let drv = Driver.create ~coalesce:true s mem in
  (* occupy the device so the two adjacent writes queue and merge *)
  ignore
    (Sched.spawn s (fun () ->
         Driver.write_exn drv ~lba:100 (Data.of_string (String.make 512 'a'))));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 0.001;
         Driver.write_exn drv ~lba:10 (Data.of_string (String.make 512 'b'))));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 0.002;
         Driver.write_exn drv ~lba:11 (Data.of_string (String.make 512 'c'))));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 0.1;
         let d = Driver.read_exn drv ~lba:10 ~sectors:2 in
         Alcotest.(check string)
           "merged payload intact"
           (String.make 512 'b' ^ String.make 512 'c')
           (Data.to_string d)));
  Sched.run s;
  Alcotest.(check int) "one merge" 1 (Driver.merges drv)

let test_driver_merged_read_slices_per_waiter () =
  let s = vsched () in
  let mem =
    Driver.mem_transport ~latency:0.01 ~sector_bytes:512 ~total_sectors:1024 s
      ()
  in
  let drv = Driver.create ~coalesce:true s mem in
  let got = Array.make 2 "" in
  ignore
    (Sched.spawn s (fun () ->
         Driver.write_exn drv ~lba:20
           (Data.of_string (String.make 512 'x' ^ String.make 512 'y'));
         (* keep the device busy so the two reads below queue together *)
         ignore (Driver.read_exn drv ~lba:500 ~sectors:1)));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 0.015;
         got.(0) <- Data.to_string (Driver.read_exn drv ~lba:20 ~sectors:1)));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 0.016;
         got.(1) <- Data.to_string (Driver.read_exn drv ~lba:21 ~sectors:1)));
  Sched.run s;
  Alcotest.(check int) "one merge" 1 (Driver.merges drv);
  Alcotest.(check string) "first waiter's slice" (String.make 512 'x') got.(0);
  Alcotest.(check string) "second waiter's slice" (String.make 512 'y') got.(1)

let test_driver_no_merge_when_disabled () =
  let s = vsched () in
  let mem =
    Driver.mem_transport ~latency:0.01 ~sector_bytes:512 ~total_sectors:1024 s
      ()
  in
  let drv = Driver.create s mem in
  ignore
    (Sched.spawn s (fun () ->
         Driver.write_exn drv ~lba:100 (Data.of_string (String.make 512 'a'))));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 0.001;
         Driver.write_exn drv ~lba:10 (Data.of_string (String.make 512 'b'))));
  ignore
    (Sched.spawn s (fun () ->
         Sched.sleep s 0.002;
         Driver.write_exn drv ~lba:11 (Data.of_string (String.make 512 'c'))));
  Sched.run s;
  Alcotest.(check int) "no merges by default" 0 (Driver.merges drv)

(* {2 Arena slices and the zero-copy Data plane}

   Property: a [Slice] (and any [Gather] of slices) is observationally
   a [Real] — sub, blit, to_string, concat and gather agree with a
   plain-bytes reference model byte for byte. Plus the refcount
   lifecycle: recycle-after-free with 0xDE poisoning, fallback when
   full, retain keeping a cell alive across a release. *)

let arena_cell = 64

let string_of_len rng n =
  String.init n (fun _ -> Char.chr (32 + Stdlib.Random.State.int rng 95))

let prop_slice_matches_real_model =
  QCheck.Test.make ~name:"arena slices behave like real bytes" ~count:200
    QCheck.(triple small_nat small_nat (int_bound 0x3FFFFFFF))
    (fun (a, b, seed) ->
      let rng = Stdlib.Random.State.make [| seed |] in
      let arena = Arena.create ~cell_bytes:arena_cell ~cells:8 () in
      let mk n =
        let s = string_of_len rng n in
        let slice = Arena.copy_in arena (Data.of_string s) in
        (s, slice)
      in
      let la = 1 + (a mod arena_cell) and lb = 1 + (b mod arena_cell) in
      let sa, da = mk la and sb, db = mk lb in
      (* to_string round-trips *)
      assert (Data.to_string da = sa);
      (* sub agrees with String.sub *)
      let pos = Stdlib.Random.State.int rng la in
      let len = Stdlib.Random.State.int rng (la - pos + 1) in
      assert (Data.to_string (Data.sub da ~pos ~len) = String.sub sa pos len);
      (* gather preserves the pieces without flattening *)
      let g = Data.gather [ da; db ] in
      assert (Data.length g = la + lb);
      assert (Data.to_string g = sa ^ sb);
      (* concat over slices agrees with string concat *)
      assert (Data.to_string (Data.concat [ da; db ]) = sa ^ sb);
      (* blit out of a slice into a real buffer *)
      let dst = Data.real la in
      Data.blit ~src:da ~src_pos:0 ~dst ~dst_pos:0 ~len:la;
      assert (Data.to_string dst = sa);
      (* blit into a slice, then read it back *)
      let db' = Arena.copy_in arena (Data.of_string sb) in
      let n = Stdlib.min la lb in
      Data.blit ~src:da ~src_pos:0 ~dst:db' ~dst_pos:0 ~len:n;
      assert (Data.to_string db'
              = String.sub sa 0 n ^ String.sub sb n (lb - n));
      Data.release da;
      Data.release db;
      Data.release db';
      true)

let test_arena_recycles_after_free () =
  let a = Arena.create ~cell_bytes:16 ~cells:2 () in
  let d1 = Arena.alloc a and d2 = Arena.alloc a in
  Alcotest.(check int) "both cells live" 2 (Arena.live a);
  (* full: the next allocation falls back to the heap, never blocks *)
  let d3 = Arena.alloc a in
  Alcotest.(check int) "fallback allocation" 1 (Arena.fallbacks a);
  Alcotest.(check bool) "fallback is plain real" true (Data.is_real d3);
  Data.release d1;
  Alcotest.(check int) "cell recycled" 1 (Arena.recycled a);
  Alcotest.(check int) "one live" 1 (Arena.live a);
  let d4 = Arena.alloc a in
  Alcotest.(check int) "recycled cell reused, no fallback" 1
    (Arena.fallbacks a);
  Data.release d2;
  Data.release d3;
  Data.release d4

let test_arena_poisons_freed_cells () =
  let a = Arena.create ~poison:true ~cell_bytes:8 ~cells:1 () in
  let d = Arena.copy_in a (Data.of_string "AAAAAAAA") in
  Alcotest.(check string) "contents before free" "AAAAAAAA"
    (Data.to_string d);
  Data.release d;
  (* the freed cell was poisoned; the recycled allocation sees 0xDE
     until overwritten — catching anyone who kept reading [d] *)
  let d2 = Arena.alloc a in
  Alcotest.(check string) "poisoned on free"
    (String.make 8 '\xDE') (Data.to_string d2);
  Data.release d2

let test_arena_retain_keeps_cell_alive () =
  let a = Arena.create ~cell_bytes:8 ~cells:1 () in
  let d = Arena.copy_in a (Data.of_string "snapshot") in
  Data.retain d;
  (* first release: the flush snapshot still holds its reference *)
  Data.release d;
  Alcotest.(check int) "not recycled yet" 0 (Arena.recycled a);
  Alcotest.(check string) "bytes intact" "snapshot" (Data.to_string d);
  Data.release d;
  Alcotest.(check int) "now recycled" 1 (Arena.recycled a)

let test_arena_detach_survives_free () =
  let a = Arena.create ~cell_bytes:8 ~cells:1 () in
  let d = Arena.copy_in a (Data.of_string "keepsake") in
  let kept = Data.detach d in
  Data.release d;
  ignore (Arena.alloc a);
  Alcotest.(check string) "detached copy unaffected by recycle" "keepsake"
    (Data.to_string kept)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_geometry_bijective; prop_geometry_hp97560_bijective;
      prop_seek_monotone; prop_slice_matches_real_model ]

let suite =
  [
    Alcotest.test_case "data real roundtrip" `Quick test_data_real_roundtrip;
    Alcotest.test_case "data sim behaves" `Quick test_data_sim_behaves;
    Alcotest.test_case "data blit mixed" `Quick test_data_blit_mixed;
    Alcotest.test_case "data concat" `Quick test_data_concat;
    Alcotest.test_case "data bounds checked" `Quick test_data_bounds_checked;
    Alcotest.test_case "arena recycles after free" `Quick
      test_arena_recycles_after_free;
    Alcotest.test_case "arena poisons freed cells" `Quick
      test_arena_poisons_freed_cells;
    Alcotest.test_case "arena retain keeps cell alive" `Quick
      test_arena_retain_keeps_cell_alive;
    Alcotest.test_case "arena detach survives free" `Quick
      test_arena_detach_survives_free;
    Alcotest.test_case "geometry capacity" `Quick test_geometry_capacity;
    Alcotest.test_case "geometry origin" `Quick test_geometry_mapping_origin;
    Alcotest.test_case "geometry track skew" `Quick test_geometry_track_skew;
    Alcotest.test_case "geometry out of range" `Quick
      test_geometry_out_of_range;
    Alcotest.test_case "seek zero distance" `Quick test_seek_zero_distance_free;
    Alcotest.test_case "seek hp97560 curve" `Quick test_seek_hp97560_curve;
    Alcotest.test_case "seek linear endpoints" `Quick
      test_seek_linear_endpoints;
    Alcotest.test_case "hp97560 derived quantities" `Quick
      test_hp97560_derived_quantities;
    Alcotest.test_case "bus transfer time" `Quick test_bus_transfer_time;
    Alcotest.test_case "bus contention serializes" `Quick
      test_bus_contention_serializes;
    Alcotest.test_case "fcfs order" `Quick test_fcfs_order;
    Alcotest.test_case "sstf order" `Quick test_sstf_order;
    Alcotest.test_case "look reverses" `Quick test_look_reverses;
    Alcotest.test_case "clook wraps" `Quick test_clook_wraps;
    Alcotest.test_case "scan-edf deadlines first" `Quick
      test_scan_edf_deadlines_first;
    Alcotest.test_case "policy tie-break fifo" `Quick
      test_policy_tie_break_fifo;
    Alcotest.test_case "policy by_name" `Quick test_by_name_roundtrip;
    Alcotest.test_case "disk read latency band" `Quick
      test_disk_read_latency_band;
    Alcotest.test_case "disk cache hit fast" `Quick test_disk_cache_hit_is_fast;
    Alcotest.test_case "disk read-ahead" `Quick test_disk_read_ahead_serves_next;
    Alcotest.test_case "disk immediate-report write" `Quick
      test_disk_immediate_report_write;
    Alcotest.test_case "disk backed write/read" `Quick
      test_disk_write_then_read_backed;
    Alcotest.test_case "disk write invalidates cache" `Quick
      test_disk_write_invalidates_cache;
    Alcotest.test_case "sequential beats random" `Quick
      test_disk_sequential_beats_random;
    Alcotest.test_case "disk bounds check" `Quick test_disk_bounds_check;
    Alcotest.test_case "driver blocking roundtrip" `Quick
      test_driver_blocking_roundtrip;
    Alcotest.test_case "driver parallel completes" `Quick
      test_driver_parallel_requests_all_complete;
    Alcotest.test_case "driver queueing latency" `Quick
      test_driver_queueing_increases_latency;
    Alcotest.test_case "driver drain" `Quick test_driver_drain;
    Alcotest.test_case "driver merges adjacent writes" `Quick
      test_driver_merges_adjacent_writes;
    Alcotest.test_case "merged read slices per waiter" `Quick
      test_driver_merged_read_slices_per_waiter;
    Alcotest.test_case "no merging when disabled" `Quick
      test_driver_no_merge_when_disabled;
  ]
  @ qsuite
