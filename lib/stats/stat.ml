type t = {
  name : string;
  welford : Welford.t;
  histogram : Histogram.t option;
  samples : Sample_set.t option;
}

let scalar name =
  { name; welford = Welford.create (); histogram = None; samples = None }

let with_histogram name hist =
  { name; welford = Welford.create (); histogram = Some hist; samples = None }

let with_samples name samples =
  { name; welford = Welford.create (); histogram = None; samples = Some samples }

let name t = t.name

(* the hottest call in the tree: match directly — [Option.iter] would
   close over [x] on every record *)
let record t x =
  Welford.add t.welford x;
  (match t.histogram with Some h -> Histogram.add h x | None -> ());
  match t.samples with Some s -> Sample_set.add s x | None -> ()

let count t = Welford.count t.welford
let mean t = Welford.mean t.welford
let welford t = t.welford
let histogram t = t.histogram
let samples t = t.samples

let reset t =
  Welford.reset t.welford;
  Option.iter Histogram.reset t.histogram;
  Option.iter Sample_set.reset t.samples

let report ?(histograms = true) ppf t =
  Format.fprintf ppf "@[<v>%-32s %a@," t.name Welford.pp t.welford;
  if histograms then
    Option.iter (fun h -> Histogram.pp ppf h) t.histogram;
  Format.fprintf ppf "@]"
