lib/disk/driver.ml: Bytes Capfs_sched Capfs_stats Data Disk_model Geometry Hashtbl Iorequest Iosched List Sim_disk
