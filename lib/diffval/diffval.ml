module Sched = Capfs_sched.Sched
module Stats = Capfs_stats
module Snapshot = Capfs_stats.Snapshot
module Names = Capfs_stats.Names
module Driver = Capfs_disk.Driver
module Iosched = Capfs_disk.Iosched
module Geometry = Capfs_disk.Geometry
module Sim_disk = Capfs_disk.Sim_disk
module Bus = Capfs_disk.Bus
module Lfs = Capfs_layout.Lfs
module Replacement = Capfs_cache.Replacement
module Fsys = Capfs.Fsys
module Client = Capfs.Client
module Errno = Capfs_core.Errno
module Plan = Capfs_fault.Plan
module Experiment = Capfs_patsy.Experiment
module Multiplex = Capfs_layout.Multiplex
module Replay = Capfs_patsy.Replay
module File_blockdev = Capfs_pfs.File_blockdev
module Pfs = Capfs_pfs.Pfs
module Cache = Capfs_cache.Cache

let src = Logs.Src.create "capfs.diffval" ~doc:"differential sim-vs-real validation"

module Log = (val Logs.src_log src : Logs.LOG)

(* {2 Tolerances} *)

type tolerance =
  | Exact
  | Within of { rel : float; abs : float }
  | Informational

(* Per-counter defaults, keyed by the counter suffix (the part after the
   instance name). The split mirrors the contract in VALIDATION.md:

   - {e policy counters} — event counts that depend only on the trace
     and the shared policy code — are gated tightly;
   - {e fault-machinery counters} depend on where the injector's PRNG
     draws land in each engine's (different) request stream, so they are
     gated loosely: both halves must degrade to the same order;
   - {e timing counters} (waits, stalls, queue depths, gauges sampled on
     a timer) measure the engine, not the policy: virtual seconds and
     wall-clock seconds are incommensurable, so they are reported but
     never gated. *)
let default_tolerances =
  [
    (* cache: policy-visible event counts *)
    ("hits", Within { rel = 0.05; abs = 24. });
    ("misses", Within { rel = 0.05; abs = 24. });
    ("evictions", Within { rel = 0.05; abs = 8. });
    ("flushed_blocks", Within { rel = 0.05; abs = 8. });
    ("absorbed_writes", Within { rel = 0.05; abs = 8. });
    ("overwrites", Within { rel = 0.05; abs = 8. });
    (* layout: policy-visible event counts *)
    ("segment_sealed", Within { rel = 0.05; abs = 4. });
    ("checkpoint", Within { rel = 0.; abs = 2. });
    ("alloc", Within { rel = 0.05; abs = 8. });
    ("commits", Within { rel = 0.05; abs = 8. });
    ("guesses", Within { rel = 0.05; abs = 8. });
    (* fault machinery: same order of degradation, not same placement *)
    ("retries", Within { rel = 0.75; abs = 64. });
    ("io_errors", Within { rel = 0.75; abs = 64. });
    (* timing / engine-dependent: reported, never gated *)
    ("wait", Informational);
    ("response", Informational);
    ("queue_len", Informational);
    ("read_stall", Informational);
    ("write_stall", Informational);
    ("dirty_blocks", Informational);
    ("nvram_used", Informational);
    ("free_segments", Informational);
    ("merged", Informational);
    ("merge_span", Informational);
    (* zero-copy accounting: where payload bytes are physically copied
       is an engine property (the PFS half blits at the real device
       boundary, the sim half charges the cache-adopt copy), never a
       policy outcome *)
    ("blit_count", Informational);
    ("copied_bytes", Informational);
  ]

(* a counter nobody declared: gate it, but leave slack — new stats
   should be triaged into the table above (the CI lint insists) *)
let fallback_tolerance = Within { rel = 0.25; abs = 16. }

let suffix key =
  match String.rindex_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let pass tol a b =
  match tol with
  | Exact -> a = b
  | Informational -> true
  | Within { rel; abs } ->
    let a = float_of_int a and b = float_of_int b in
    let d = Float.abs (a -. b) in
    d <= Float.max abs (rel *. Float.max (Float.abs a) (Float.abs b))

let tolerance_to_string = function
  | Exact -> "exact"
  | Informational -> "informational"
  | Within { rel; abs } -> Printf.sprintf "rel=%g,abs=%g" rel abs

(* {2 Report types} *)

type verdict = {
  v_key : string;
  v_patsy : int;
  v_pfs : int;
  v_tolerance : tolerance;
  v_ok : bool;
}

type side = {
  s_clock : string;
  s_operations : int;
  s_errors : int;
  s_skipped : int;
  s_elapsed : float;
  s_fsck_errors : string list;
  s_recovered_inodes : int;
  s_snapshot : Snapshot.t;
}

type report = {
  r_trace : string;
  r_policy : string;
  r_plan : string;
  r_speedup : float;
  r_skewed : bool;
  r_patsy : side;
  r_pfs : side;
  r_only_patsy : string list;
  r_only_pfs : string list;
  r_verdicts : verdict list;
  r_ok : bool;
}

type config = {
  base : Experiment.config;
  image_mb : int;
  speedup : float;
  pfs_clock : Sched.clock;
  tolerances : (string * tolerance) list;
}

let default ?(policy = Experiment.Nvram_partial) () =
  {
    base =
      {
        (Experiment.default policy) with
        (* one disk, one bus: PFS runs on a single backing file, so the
           comparable simulator farm is the single-spindle one *)
        Experiment.ndisks = 1;
        nbuses = 1;
        (* memcpy simulation charges virtual seconds in Patsy but would
           charge real seconds in PFS; keep copies free on both halves *)
        mem_copy_rate = 0.;
      };
    image_mb = 128;
    speedup = 100_000.;
    pfs_clock = `Real;
    tolerances = [];
  }

let plan_of base =
  match base.Experiment.fault_plan with
  | None -> Plan.empty
  | Some p ->
    (* a crash mid-replay is Crash.run's job; diffval compares two
       complete runs *)
    { p with Plan.crash_at = None }

let sanitize base = { base with Experiment.fault_plan =
    (let p = plan_of base in if Plan.is_empty p then None else Some p) }

(* {2 The Patsy half: virtual time, simulated disk} *)

let run_patsy ~speedup base source =
  let sched =
    Sched.create ~seed:base.Experiment.seed ~clock:`Virtual
      ~injector:(Experiment.injector_of base) ()
  in
  let out = ref None in
  ignore
    (Sched.spawn sched ~name:"diffval.patsy" (fun () ->
         (* backing stores: the Patsy half must leave real bytes behind
            so its volume can be remounted and fsck'd like PFS's image *)
         let farm = Experiment.build_farm ~backing:true sched base in
         let replay =
           Replay.run ~speedup ~serial:true ~real_data:true
             farm.Experiment.f_client source
         in
         (* equivalent sync point: drain all outstanding writes before
            the snapshot, so flush counters are complete on both halves *)
         (match Client.sync farm.Experiment.f_client with
         | Ok () | (exception Errno.Error _) -> ()
         | Error _ -> ());
         let snap =
           Snapshot.capture ~filter:Snapshot.policy_visible
             farm.Experiment.f_registry
         in
         out := Some (farm, replay, snap)));
  Sched.run sched;
  match !out with
  | None -> Error Errno.EIO
  | Some (farm, replay, snap) ->
    (* crash-free close check: the surviving bytes must recover to a
       clean fsck on a fresh scheduler, mirroring a server restart *)
    let stores =
      Array.map
        (fun d ->
          match Sim_disk.store_snapshot d with Some s -> s | None -> [||])
        farm.Experiment.f_disks
    in
    let sched2 = Sched.create ~seed:base.Experiment.seed ~clock:`Virtual () in
    let r2 = Stats.Registry.create () in
    let bus = Bus.scsi2 ~registry:r2 ~name:(Names.bus 0) sched2 in
    let fsck = ref [ "recovery did not run" ] and inodes = ref 0 in
    let disk =
      Sim_disk.create ~registry:r2 ~name:(Names.disk 0) ~backing:true sched2
        base.Experiment.disk_model bus
    in
    Sim_disk.store_restore disk stores.(0);
    let driver =
      Driver.create ~registry:r2 ~name:(Names.driver 0)
        ~policy:
          (Iosched.by_name base.Experiment.disk_model.Capfs_disk.Disk_model.geometry
             base.Experiment.iosched)
        sched2 (Driver.sim_transport disk)
    in
    ignore
      (Sched.spawn sched2 ~name:"diffval.patsy.fsck" (fun () ->
           match
             Lfs.recover ~registry:r2 ~name:(Names.lfs 0)
               ~config:(Experiment.lfs_config_of base 0) sched2 driver
           with
           | Ok (_, rep) ->
             fsck := rep.Lfs.r_fsck_errors;
             inodes := rep.Lfs.r_recovered_inodes
           | Error e -> fsck := [ "recovery failed: " ^ Errno.to_string e ]));
    Sched.run sched2;
    Ok
      {
        s_clock = "virtual";
        s_operations = replay.Replay.operations;
        s_errors = replay.Replay.errors;
        s_skipped = replay.Replay.skipped_ops;
        s_elapsed = replay.Replay.elapsed;
        s_fsck_errors = !fsck;
        s_recovered_inodes = !inodes;
        s_snapshot = snap;
      }

(* {2 The PFS half: real clock, real backing file}

   Since the [Pfs.Config] redesign this half goes through [Pfs.create]
   itself — the very constructor the production server and every test
   use — instead of hand-assembling a lookalike stack. What diffval
   certifies is therefore the deployed construction path, not a
   parallel copy of it. *)

(* Translate an experiment config into the [Pfs.Config] of the
   equivalent single-volume server. The cache knobs go through
   [Experiment.cache_config_of] so policy → trigger/scope/nvram mapping
   stays in one place. [workers = 0]: replay drives the abstract client
   interface directly, and idle NFS worker fibres would shift the
   scheduler's PRNG dispatch draws. *)
let pfs_config_of ~image ~image_mb ~clock base =
  let cc = Experiment.cache_config_of base in
  let block = Experiment.block_bytes in
  Pfs.Config.make ~image ~size_mb:image_mb
    ~cache_mb:(cc.Cache.capacity_blocks * block / (1024 * 1024))
    ~nvram_mb:(cc.Cache.nvram_blocks * block / (1024 * 1024))
    ~trigger:cc.Cache.trigger ~scope:cc.Cache.scope
    ~iosched:base.Experiment.iosched
    ~replacement:base.Experiment.replacement
    ~seg_blocks:base.Experiment.seg_blocks ~cleaner:base.Experiment.cleaner
    ~async_flush:cc.Cache.async_flush
    ~mem_copy_rate:cc.Cache.mem_copy_rate
    ~coalesce:cc.Cache.coalesce
    ~flush_window:cc.Cache.flush_window
    ~max_extent:cc.Cache.max_extent_blocks ~workers:0 ~clock
    ~seed:base.Experiment.seed ()

(* The differential harness must never mistake "no data" for "no
   drift": a volume that yields no snapshot is a harness error
   ([EINVAL], exit 2 in the patsy CLI), not silent equivalence. *)
let volume_snapshot t =
  match Pfs.snapshot t with
  | Some snap -> Ok snap
  | None ->
    Log.err (fun m ->
        m "PFS volume has no statistics registry — harness bug, not \
           equivalence");
    Error Errno.EINVAL

let run_pfs ~speedup ~image_mb ~clock base source =
  let image = Filename.temp_file "capfs_diffval" ".img" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove image with Sys_error _ -> ())
    (fun () ->
      let size_bytes = image_mb * 1024 * 1024 in
      let registry = Stats.Registry.create () in
      let cfg = pfs_config_of ~image ~image_mb ~clock base in
      match
        Pfs.create ~registry ~injector:(Experiment.injector_of base) cfg
      with
      | Error _ as e -> e
      | Ok t -> (
        let out = ref None in
        ignore
          (Sched.spawn t.Pfs.sched ~name:"diffval.pfs" (fun () ->
               out :=
                 Some
                   (Replay.run ~speedup ~serial:true ~real_data:true
                      t.Pfs.client source)));
        Sched.run t.Pfs.sched;
        (* equivalent sync point: [Pfs.shutdown] syncs and closes, so
           flush counters are complete before the capture *)
        Pfs.shutdown t;
        match (!out, volume_snapshot t) with
        | None, _ -> Error Errno.EIO
        | _, (Error _ as e) -> e
        | Some replay, Ok snap ->
          (* crash-free close check: reopen the image cold and fsck it,
             exactly what a PFS restart does *)
          let sched2 = Sched.create ~clock:`Virtual () in
          let tr2 =
            File_blockdev.transport sched2 ~path:image ~size_bytes ()
          in
          let flat =
            Geometry.v ~cylinders:tr2.Driver.total_sectors ~heads:1
              ~sectors_per_track:1 ~sector_bytes:tr2.Driver.sector_bytes ()
          in
          let drv2 =
            Driver.create ~name:(Names.driver 0)
              ~policy:(Iosched.by_name flat base.Experiment.iosched)
              sched2 tr2
          in
          let fsck = ref [ "recovery did not run" ] and inodes = ref 0 in
          ignore
            (Sched.spawn sched2 ~name:"diffval.pfs.fsck" (fun () ->
                 match Lfs.recover ~name:(Names.lfs 0) sched2 drv2 with
                 | Ok (_, rep) ->
                   fsck := rep.Lfs.r_fsck_errors;
                   inodes := rep.Lfs.r_recovered_inodes
                 | Error e ->
                   fsck := [ "recovery failed: " ^ Errno.to_string e ]));
          Sched.run sched2;
          File_blockdev.close tr2;
          Ok
            {
              s_clock =
                (match clock with `Real -> "real" | `Virtual -> "virtual");
              s_operations = replay.Replay.operations;
              s_errors = replay.Replay.errors;
              s_skipped = replay.Replay.skipped_ops;
              s_elapsed = replay.Replay.elapsed;
              s_fsck_errors = !fsck;
              s_recovered_inodes = !inodes;
              s_snapshot = snap;
            }))

(* {2 The diff} *)

let tolerance_for tolerances key =
  let s = suffix key in
  match List.assoc_opt s tolerances with
  | Some t -> t
  | None -> (
    match List.assoc_opt s default_tolerances with
    | Some t -> t
    | None -> fallback_tolerance)

let diff_snapshots ?(tolerances = []) ~patsy ~pfs () =
  let patsy_keys = Snapshot.keys patsy and pfs_keys = Snapshot.keys pfs in
  let only_patsy =
    List.filter (fun k -> Snapshot.find pfs k = None) patsy_keys
  in
  let only_pfs =
    List.filter (fun k -> Snapshot.find patsy k = None) pfs_keys
  in
  let verdicts =
    List.filter_map
      (fun key ->
        match Snapshot.find pfs key with
        | None -> None
        | Some b ->
          let a =
            match Snapshot.find patsy key with
            | Some a -> a
            | None -> assert false
          in
          let tol = tolerance_for tolerances key in
          Some
            {
              v_key = key;
              v_patsy = a.Snapshot.e_count;
              v_pfs = b.Snapshot.e_count;
              v_tolerance = tol;
              v_ok = pass tol a.Snapshot.e_count b.Snapshot.e_count;
            })
      patsy_keys
  in
  (verdicts, only_patsy, only_pfs)

let replay_verdicts ~(patsy : side) ~(pfs : side) =
  [
    {
      v_key = "replay.operations";
      v_patsy = patsy.s_operations;
      v_pfs = pfs.s_operations;
      v_tolerance = Exact;
      v_ok = patsy.s_operations = pfs.s_operations;
    };
    {
      v_key = "replay.errors";
      v_patsy = patsy.s_errors;
      v_pfs = pfs.s_errors;
      v_tolerance = Within { rel = 0.75; abs = 16. };
      v_ok =
        pass (Within { rel = 0.75; abs = 16. }) patsy.s_errors pfs.s_errors;
    };
    {
      v_key = "replay.skipped_ops";
      v_patsy = patsy.s_skipped;
      v_pfs = pfs.s_skipped;
      v_tolerance = Within { rel = 0.; abs = 4. };
      v_ok = pass (Within { rel = 0.; abs = 4. }) patsy.s_skipped pfs.s_skipped;
    };
  ]

let verdicts_ok verdicts = List.for_all (fun v -> v.v_ok) verdicts

(* {2 The harness} *)

let run ?config ?skew ~trace_name source =
  let cfg = match config with Some c -> c | None -> default () in
  let base = sanitize cfg.base in
  let pfs_base =
    match skew with None -> base | Some f -> sanitize (f base)
  in
  if Capfs_trace.Source.length source = 0 then Error Errno.EINVAL
  else
    match
      ( run_patsy ~speedup:cfg.speedup base source,
        run_pfs ~speedup:cfg.speedup ~image_mb:cfg.image_mb
          ~clock:cfg.pfs_clock pfs_base source )
    with
    | Error e, _ | _, Error e -> Error e
    | Ok patsy, Ok pfs ->
      let verdicts, only_patsy, only_pfs =
        diff_snapshots ~tolerances:cfg.tolerances ~patsy:patsy.s_snapshot
          ~pfs:pfs.s_snapshot ()
      in
      let verdicts = replay_verdicts ~patsy ~pfs @ verdicts in
      let fsck_clean = patsy.s_fsck_errors = [] && pfs.s_fsck_errors = [] in
      let ok =
        verdicts_ok verdicts && only_patsy = [] && only_pfs = []
        && fsck_clean
      in
      Log.info (fun m ->
          m "diffval %s: %d counters compared, %d drifted key(s), ok=%b"
            trace_name (List.length verdicts)
            (List.length only_patsy + List.length only_pfs)
            ok);
      Ok
        {
          r_trace = trace_name;
          r_policy = Experiment.policy_name base.Experiment.policy;
          r_plan = Plan.to_string (plan_of base);
          r_speedup = cfg.speedup;
          r_skewed = skew <> None;
          r_patsy = patsy;
          r_pfs = pfs;
          r_only_patsy = only_patsy;
          r_only_pfs = only_pfs;
          r_verdicts = verdicts;
          r_ok = ok;
        }

(* {2 Rendering} *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_string_list b l =
  Buffer.add_char b '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape s)))
    l;
  Buffer.add_char b ']'

let add_side b (s : side) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"clock\":\"%s\",\"operations\":%d,\"errors\":%d,\"skipped_ops\":%d,\"elapsed_s\":%.6g,\"recovered_inodes\":%d,\"fsck_errors\":"
       s.s_clock s.s_operations s.s_errors s.s_skipped s.s_elapsed
       s.s_recovered_inodes);
  add_string_list b s.s_fsck_errors;
  Buffer.add_string b ",\"snapshot\":";
  Snapshot.add_json b s.s_snapshot;
  Buffer.add_char b '}'

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"trace\":\"%s\",\"policy\":\"%s\",\"fault_plan\":\"%s\",\"speedup\":%g,\"skewed\":%b,\"ok\":%b,"
       (json_escape r.r_trace) (json_escape r.r_policy)
       (json_escape r.r_plan) r.r_speedup r.r_skewed r.r_ok);
  Buffer.add_string b "\"patsy\":";
  add_side b r.r_patsy;
  Buffer.add_string b ",\"pfs\":";
  add_side b r.r_pfs;
  Buffer.add_string b ",\"only_in_patsy\":";
  add_string_list b r.r_only_patsy;
  Buffer.add_string b ",\"only_in_pfs\":";
  add_string_list b r.r_only_pfs;
  Buffer.add_string b ",\"verdicts\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"key\":\"%s\",\"patsy\":%d,\"pfs\":%d,\"tolerance\":\"%s\",\"ok\":%b}"
           (json_escape v.v_key) v.v_patsy v.v_pfs
           (tolerance_to_string v.v_tolerance)
           v.v_ok))
    r.r_verdicts;
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf r =
  Format.fprintf ppf
    "# diffval: trace=%s policy=%s plan=%s speedup=%g@."
    r.r_trace r.r_policy
    (if r.r_plan = "" then "(empty)" else r.r_plan)
    r.r_speedup;
  Format.fprintf ppf
    "# patsy: %d ops, %d errors, %d skipped, %.2f virtual s | pfs (%s): %d \
     ops, %d errors, %d skipped, %.2f s@."
    r.r_patsy.s_operations r.r_patsy.s_errors r.r_patsy.s_skipped
    r.r_patsy.s_elapsed r.r_pfs.s_clock r.r_pfs.s_operations
    r.r_pfs.s_errors r.r_pfs.s_skipped r.r_pfs.s_elapsed;
  List.iter
    (fun k -> Format.fprintf ppf "  KEY DRIFT: %s only in patsy@." k)
    r.r_only_patsy;
  List.iter
    (fun k -> Format.fprintf ppf "  KEY DRIFT: %s only in pfs@." k)
    r.r_only_pfs;
  List.iter
    (fun v ->
      let gated = v.v_tolerance <> Informational in
      if (not v.v_ok) || gated then
        Format.fprintf ppf "  %-28s patsy=%-8d pfs=%-8d [%s] %s@." v.v_key
          v.v_patsy v.v_pfs
          (tolerance_to_string v.v_tolerance)
          (if not gated then "·" else if v.v_ok then "ok" else "DRIFT")
      else
        Format.fprintf ppf "  %-28s patsy=%-8d pfs=%-8d [informational]@."
          v.v_key v.v_patsy v.v_pfs)
    r.r_verdicts;
  (match (r.r_patsy.s_fsck_errors, r.r_pfs.s_fsck_errors) with
  | [], [] -> Format.fprintf ppf "# fsck: both halves clean@."
  | pe, fe ->
    List.iter (fun e -> Format.fprintf ppf "  patsy fsck: %s@." e) pe;
    List.iter (fun e -> Format.fprintf ppf "  pfs fsck: %s@." e) fe);
  Format.fprintf ppf "# verdict: %s@."
    (if r.r_ok then "EQUIVALENT (within tolerance)" else "DRIFTED")
