examples/client_caching.mli:
