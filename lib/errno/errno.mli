(** The framework-wide error vocabulary.

    Every fallible operation below the client API — driver I/O, layout
    block/inode operations, namespace manipulation — reports failure as
    [('a, Errno.t) result] over this single variant, replacing the
    per-module exception zoo (three separate [Disk_full]s,
    [Client.Bad_handle], six [Namespace] exceptions). The names follow
    errno(3) so that PFS's NFS front end can translate a failure
    straight into an NFS status code with {!to_unix}.

    This module sits below every other [capfs] library (it depends only
    on [unix]) so that [lib/disk] and [lib/layout] can share the type
    with [lib/core] without a dependency cycle. *)

type t =
  | ENOENT      (** no such file or directory *)
  | EEXIST      (** file exists *)
  | ENOTDIR     (** not a directory *)
  | EISDIR      (** is a directory *)
  | ENOTEMPTY   (** directory not empty *)
  | ELOOP       (** too many levels of symbolic links *)
  | EBADF       (** bad file handle *)
  | ESTALE      (** stale (server-side) file handle *)
  | ENOSPC      (** no space left on device *)
  | EIO         (** hard input/output error *)
  | ETIMEDOUT   (** I/O did not complete within the driver's deadline *)
  | EINVAL      (** invalid argument *)
  | EAGAIN
      (** resource temporarily unavailable — the server's typed
          admission-control pushback: a shard's bounded request queue is
          full and the client should back off and retry *)

(** Every constructor, in declaration order. The order is stable: replay
    and bench report error counts in arrays indexed by {!to_index}. *)
val all : t array

(** Position of [t] in {!all}. *)
val to_index : t -> int

(** Lowercase errno mnemonic: ["enoent"], ["eio"], … *)
val to_string : t -> string

(** The closest [Unix.error]. [ESTALE] has no portable constructor and
    maps to [Unix.EUNKNOWNERR 116] (Linux's [ESTALE]). *)
val to_unix : t -> Unix.error

(** Inverse of {!to_unix} where one exists; anything unmapped collapses
    to [EIO], the catch-all hard failure. *)
val of_unix : Unix.error -> t

(** Internal escalation carrier: module internals that cannot thread a
    [result] through (cache write-back daemons, deep recursion) raise
    [Error e] and a boundary converts it back with {!catch}. Public APIs
    never let it escape. *)
exception Error of t

(** [catch f] runs [f] and converts a raised {!Error} into [Result.Error]. *)
val catch : (unit -> 'a) -> ('a, t) result

(** [ok_exn r] unwraps [Ok] and raises {!Error} on [Result.Error]. *)
val ok_exn : ('a, t) result -> 'a

val pp : Format.formatter -> t -> unit
