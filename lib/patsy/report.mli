(** Rendering experiment results: the paper's figures as text series.

    Figures 2–4 are cumulative latency distributions; {!print_cdf}
    emits them as two-column series (latency in ms, cumulative fraction)
    with the paper's 2 ms cache-service and ~17 ms full-rotation
    boundaries annotated. Figure 5 is the mean-latency matrix over
    traces × policies; {!print_mean_table} renders it. *)

(** [cdf_series ?points result] — (latency_seconds, fraction) pairs. *)
val cdf_series :
  ?points:int -> Replay.result -> (float * float) list

(** Fraction of operations completing within the 2 ms cache boundary
    and within the ~17 ms rotation boundary. *)
val boundary_fractions : Replay.result -> float * float

(** [print_cdf ~title ppf result] prints the {!cdf_series} (default 60
    points) as a titled two-column text series, with the
    {!boundary_fractions} annotated below it. *)
val print_cdf :
  ?points:int -> title:string -> Format.formatter -> Replay.result -> unit

(** [print_mean_table ppf ~rows] where each row is
    [(trace_name, [(policy_name, value); ...])]. Values are scaled by
    [scale] (default 1000: seconds to milliseconds) and suffixed with
    [unit]. *)
val print_mean_table :
  ?scale:float ->
  ?unit:string ->
  Format.formatter ->
  rows:(string * (string * float) list) list ->
  unit

(** Per-kind breakdown of refused operations ({!Replay.result}
    [errors_by_kind]); prints ["errors: none"] on a clean replay. *)
val print_error_breakdown : Format.formatter -> Replay.result -> unit

(** One-line summary of an experiment outcome; appends an
    [errors=N(kind:n,…)] field when any operation was refused. *)
val print_outcome_summary : Format.formatter -> Experiment.outcome -> unit

(** 15-minute window means ("measurements are shown every 15 minutes of
    simulation time"). *)
val print_windows : Format.formatter -> Replay.result -> unit
