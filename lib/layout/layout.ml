module Errno = Capfs_core.Errno

type t = {
  l_name : string;
  block_bytes : int;
  total_blocks : int;
  alloc_inode : kind:Inode.kind -> (Inode.t, Errno.t) result;
  get_inode : int -> (Inode.t option, Errno.t) result;
  update_inode : Inode.t -> unit;
  free_inode : int -> (unit, Errno.t) result;
  read_block : Inode.t -> int -> (Capfs_disk.Data.t, Errno.t) result;
  read_blocks :
    Inode.t -> first:int -> count:int -> (Capfs_disk.Data.t, Errno.t) result;
  write_blocks : (int * int * Capfs_disk.Data.t) list -> (unit, Errno.t) result;
  truncate : Inode.t -> blocks:int -> (unit, Errno.t) result;
  adopt : Inode.t -> blocks:int -> (unit, Errno.t) result;
  sync : unit -> (unit, Errno.t) result;
  free_blocks : unit -> int;
  layout_stats : unit -> (string * float) list;
}

let read_span t inode ~first ~count =
  if count = 0 then Ok (Capfs_disk.Data.sim 0)
  else t.read_blocks inode ~first ~count

(* Fallback vectored read for layouts without a native one: one
   [read_block] per index, concatenated. *)
let read_blocks_naive read_block inode ~first ~count =
  let rec go i acc =
    if i >= count then Ok (Capfs_disk.Data.concat (List.rev acc))
    else
      match read_block inode (first + i) with
      | Ok d -> go (i + 1) (d :: acc)
      | Error _ as e -> e
  in
  go 0 []
