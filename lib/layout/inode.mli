(** Inodes — the per-file metadata every storage layout persists.

    The block map is a growable in-memory array of disk-block addresses
    ({!addr_none} marks holes). Layouts serialize the first
    {!ndirect} addresses inline and spill the remainder into indirect
    blocks they allocate themselves. *)

type kind = Regular | Directory | Symlink | Multimedia

(** Address of a hole / unallocated block. *)
val addr_none : int

(** Direct addresses stored inline in the on-disk inode. *)
val ndirect : int

type t = {
  ino : int;
  mutable kind : kind;
  mutable size : int;     (** bytes *)
  mutable nlink : int;
  mutable uid : int;
  mutable atime : float;
  mutable mtime : float;
  mutable ctime : float;
  mutable blocks : int array;  (** disk address per file block *)
  mutable nblocks : int;       (** addresses in use *)
}

(** [make ~ino ~kind ~now] is a fresh empty inode ([nlink = 1], all
    three timestamps set to [now], no blocks mapped). *)
val make : ino:int -> kind:kind -> now:float -> t

(** [get_addr t i] is the disk address of file block [i], or
    [addr_none]. *)
val get_addr : t -> int -> int

(** [set_addr t i addr] grows the map as needed. *)
val set_addr : t -> int -> int -> unit

(** [truncate_blocks t ~blocks] drops addresses at index >= [blocks] and
    returns the dropped (non-hole) addresses, for the layout to free. *)
val truncate_blocks : t -> blocks:int -> int list

(** Addresses currently mapped, as (file_block, disk_addr) pairs. *)
val mapped : t -> (int * int) list

(** The on-disk encoding of {!kind}. [kind_of_int] raises
    [Codec.Corrupt] on an unknown tag. *)
val kind_to_int : kind -> int

val kind_of_int : int -> kind

(** Serialize everything except the spilled block map: the caller passes
    the disk addresses of the indirect blocks it wrote. *)
val serialize : t -> indirect:int list -> string

(** Inverse of {!serialize}: returns the inode (with only direct
    addresses present) and the indirect block addresses to fetch. *)
val deserialize : string -> t * int list

(** How many block addresses fit in one indirect block of [block_bytes]. *)
val addrs_per_indirect : block_bytes:int -> int

(** One-line rendering (ino, kind, size, mapped blocks) for logs. *)
val pp : Format.formatter -> t -> unit
