lib/stats/histogram.ml: Array Format List Stdlib String
