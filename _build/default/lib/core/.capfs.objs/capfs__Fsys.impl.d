lib/core/fsys.ml: Capfs_cache Capfs_layout Capfs_sched Capfs_stats List
