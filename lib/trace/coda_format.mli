(** Coda-style trace format (Mummert & Satyanarayanan's DFSTrace
    flavour).

    Coda traces identify files by (volume, vnode) fids rather than
    paths, and batch per-session. One record per line:
    {v <time|?> <client> <op> <volume>:<vnode> [args] v}
    e.g. {v 4.250000 17 STORE 7f000123:22 65536 v}

    Ops: [OPEN r|w|rw], [CLOSE], [FETCH off len] (read), [STORE off len]
    (write), [GETATTR] (stat), [REMOVE], [TRUNCATE size], [MKDIR],
    [RMDIR]. Fids are mapped onto synthetic paths
    ["/coda/<volume>/<vnode>"] so the same replay engine drives both
    trace families, exactly as the paper's Sprite and Coda classes both
    dispatch onto the abstract client interface. *)

exception Parse_error of int * string

val parse_line : line:int -> string -> Record.t option

(** The returned array is fresh and immutable by convention (shared
    freely, never mutated — see {!Source}). *)
val of_string : string -> Record.t array

(** Render records whose paths have the ["/coda/vol/vnode"] shape back
    into fid form; other paths get a deterministic synthetic fid. *)
val to_string : Record.t array -> string

(** [load] materializes the whole trace; {!Source.coda_file} streams
    the same format with O(1) memory. *)
val load : string -> Record.t array

val save : string -> Record.t array -> unit
