(* In-process shard-routing probe: ops/s through Server.call under the
   virtual clock, 1 vs 4 shards — the loadgen path minus the wire. On a
   single core more shards cost a little (more schedulers to pump); on
   a real multi-core box the socket server spreads them over domains. *)
module Pfs = Capfs_pfs.Pfs
module Server = Capfs_pfs.Server
module Wire = Capfs_pfs.Wire

let dirs = [| "/alpha"; "/beta"; "/gamma"; "/delta" |]

let run shards =
  let path = Filename.temp_file "prof10" ".img" in
  let cfg =
    Pfs.Config.make ~image:path ~size_mb:8 ~clock:`Virtual ~shards ~workers:0 ()
  in
  let t =
    match Server.create cfg with
    | Ok t -> t
    | Error e -> failwith (Capfs_core.Errno.to_string e)
  in
  Array.iter (fun d -> ignore (Server.call t (Wire.Mkdir d))) dirs;
  let ops = 4_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    let file = Printf.sprintf "%s/f%d" dirs.(i mod 4) (i mod 16) in
    (match Server.call t (Wire.Write { client = 0; path = file; offset = 0;
                                       data = String.make 512 'x' }) with
    | Wire.Ok_unit -> ()
    | r -> Format.kasprintf failwith "write: %a" Wire.pp_reply r);
    match Server.call t (Wire.Read { client = 0; path = file; offset = 0;
                                     count = 512 }) with
    | Wire.Ok_data _ -> ()
    | r -> Format.kasprintf failwith "read: %a" Wire.pp_reply r
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Server.shutdown t;
  Sys.remove path;
  for i = 0 to shards - 1 do
    let s = Printf.sprintf "%s.shard%d" path i in
    if Sys.file_exists s then Sys.remove s
  done;
  Printf.printf "%d shard(s): %6.0f ops/s (%d ops in %.2fs)\n%!"
    shards (float_of_int (2 * ops) /. dt) (2 * ops) dt

let () =
  run 1;
  run 4
