module Key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = Hashtbl.hash (a, b)
  let pp ppf (ino, idx) = Format.fprintf ppf "%d:%d" ino idx
end

type state = Clean | Dirty | Flushing

type t = {
  key : Key.t;
  mutable data : Capfs_disk.Data.t;
  mutable state : state;
  mutable dirtied_at : float;
  mutable last_access : float;
  mutable access_count : int;
  mutable version : int;
  mutable in_nvram : bool;
  mutable pinned : int;
  mutable policy_slot : int;
  mutable zombie : bool;
}

let make ~key ~data ~now =
  {
    key;
    data;
    state = Clean;
    dirtied_at = now;
    last_access = now;
    access_count = 0;
    version = 0;
    in_nvram = false;
    pinned = 0;
    policy_slot = -1;
    zombie = false;
  }

let ino t = fst t.key
let index t = snd t.key
let is_dirty t = match t.state with Dirty | Flushing -> true | Clean -> false
let evictable t = t.state = Clean && t.pinned = 0
let pin t = t.pinned <- t.pinned + 1

let unpin t =
  if t.pinned <= 0 then invalid_arg "Block.unpin: not pinned";
  t.pinned <- t.pinned - 1

let pp ppf t =
  Format.fprintf ppf "%a[%s%s%s]" Key.pp t.key
    (match t.state with Clean -> "C" | Dirty -> "D" | Flushing -> "F")
    (if t.in_nvram then "N" else "")
    (if t.pinned > 0 then "P" else "")
