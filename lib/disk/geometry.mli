(** Disk geometry and logical-block mapping.

    Maps logical block addresses (sector numbers as seen by the driver)
    onto physical cylinder/head/sector positions, including track and
    cylinder skew — the deliberate rotational offset between consecutive
    tracks that gives the head-switch or seek time a chance to complete
    without losing a revolution on sequential transfers. *)

type t = {
  cylinders : int;
  heads : int;            (** data surfaces, i.e. tracks per cylinder *)
  sectors_per_track : int;
  sector_bytes : int;
  track_skew : int;       (** sectors of offset between adjacent tracks *)
  cylinder_skew : int;    (** extra offset across a cylinder boundary *)
}

(** Physical position of a sector. [angle] is the rotational slot of the
    sector on its track, in [0, sectors_per_track). *)
type pos = { cylinder : int; head : int; angle : int }

(** [v ~cylinders ~heads ~sectors_per_track ~sector_bytes ()] builds a
    geometry; both skews default to 0 (no rotational offset). Raises
    [Invalid_argument] on non-positive dimensions. *)
val v :
  cylinders:int ->
  heads:int ->
  sectors_per_track:int ->
  sector_bytes:int ->
  ?track_skew:int ->
  ?cylinder_skew:int ->
  unit ->
  t

(** Total addressable sectors. *)
val capacity_sectors : t -> int

(** Total bytes. *)
val capacity_bytes : t -> int

(** [pos_of_lba t lba] is the physical position of logical sector [lba].
    Raises [Invalid_argument] when out of range. *)
val pos_of_lba : t -> int -> pos

(** [lba_of_pos t pos] inverts {!pos_of_lba}. *)
val lba_of_pos : t -> pos -> int

(** Cylinder of a logical sector (cheap; for queue schedulers). *)
val cylinder_of_lba : t -> int -> int
