lib/cache/block.ml: Capfs_disk Format Hashtbl
