(** Low-overhead structured event tracer.

    A tracer is a fixed-capacity ring buffer of {!Event.t}: emissions
    never allocate queue nodes or grow memory, and once the buffer is
    full the {e oldest} events are overwritten — a flight recorder, not
    a log. The tail of a long run is what debugging needs (the state
    that led to the interesting end condition), and a bounded buffer
    means tracing can stay on in week-long simulated runs.

    {b Cost discipline.} Instrumented hot paths must guard every
    emission with {!enabled}:

    {[
      if Tracer.enabled tr then
        Tracer.emit tr ~time (Event.Cache_hit { cache; ino; index })
    ]}

    so that with tracing off ({!null}, the default everywhere) the whole
    instrumentation point compiles to one load and one conditional
    branch — the event payload is never even allocated.

    {b Concurrency.} A tracer is single-domain mutable state. The
    experiment fleet gives each worker-domain job its own tracer (the
    scheduler carries it, and every component of one experiment shares
    that scheduler); streams are merged deterministically afterwards —
    see [Fleet.merged_events]. *)

type t

(** The disabled tracer: {!enabled} is [false], {!emit} does nothing.
    Components default to this. *)
val null : t

(** [create ~capacity ()] — an enabled tracer retaining the newest
    [capacity] events (default 65536). Raises [Invalid_argument] if
    [capacity < 1]. *)
val create : ?capacity:int -> unit -> t

(** Constant-time guard; [false] only for {!null}. *)
val enabled : t -> bool

(** [emit t ~time kind] appends an event, overwriting the oldest when
    full. Each emission gets the next sequence number (1-based), so
    [(time, seq)] totally orders one tracer's stream even when many
    events share a timestamp. No-op on {!null}. *)
val emit : t -> time:float -> Event.kind -> unit

(** Buffered events, oldest first. At most [capacity] of them. *)
val events : t -> Event.t list

(** Events currently buffered. *)
val length : t -> int

val capacity : t -> int

(** Events overwritten so far ([total emitted - length]). *)
val dropped : t -> int

(** Forget everything buffered (sequence numbers keep counting up). *)
val clear : t -> unit
