(* Tests for the storage layouts: codec, inodes, segmented LFS (log,
   cleaner, checkpoints, roll-forward), FFS baseline, simulator layout. *)

open Capfs_layout
module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver

let run_fs f =
  let s = Sched.create ~clock:`Virtual () in
  ignore (Sched.spawn s (fun () -> f s));
  Sched.run s

(* a 4 MB RAM disk: big enough for several segments, small enough to
   force cleaning quickly *)
let mem_driver ?(sectors = 8192) s =
  Driver.create s (Driver.mem_transport ~sector_bytes:512 ~total_sectors:sectors s ())

let small_lfs_config =
  {
    Lfs.seg_blocks = 16;
    checkpoint_blocks = 8;
    cleaner = Lfs.Cost_benefit;
    min_free_segments = 3;
    target_free_segments = 5;
    first_ino = 1;
    ino_stride = 1;
  }

let block_of_char c = Data.of_string (String.make 4096 c)

(* The Layout record is result-typed now; tests treat failure as fatal. *)
let ok = Capfs_core.Errno.ok_exn
let alloc_inode l ~kind = ok (l.Layout.alloc_inode ~kind)
let get_inode l ino = ok (l.Layout.get_inode ino)
let write_blocks l ups = ok (l.Layout.write_blocks ups)
let read_block l f i = ok (l.Layout.read_block f i)
let truncate_l l f ~blocks = ok (l.Layout.truncate f ~blocks)
let adopt_l l f ~blocks = ok (l.Layout.adopt f ~blocks)
let free_inode l ino = ok (l.Layout.free_inode ino)
let sync_l l = ok (l.Layout.sync ())

(* Codec *)

let test_codec_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 200;
  Codec.Writer.u32 w 123456;
  Codec.Writer.u64 w 987654321012;
  Codec.Writer.f64 w (-3.14159);
  Codec.Writer.string w "hello";
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check int) "u8" 200 (Codec.Reader.u8 r);
  Alcotest.(check int) "u32" 123456 (Codec.Reader.u32 r);
  Alcotest.(check int) "u64" 987654321012 (Codec.Reader.u64 r);
  Alcotest.(check (float 1e-12)) "f64" (-3.14159) (Codec.Reader.f64 r);
  Alcotest.(check string) "string" "hello" (Codec.Reader.string r);
  Alcotest.(check int) "drained" 0 (Codec.Reader.remaining r)

let test_codec_truncation_detected () =
  let w = Codec.Writer.create () in
  Codec.Writer.u64 w 42;
  let s = String.sub (Codec.Writer.contents w) 0 3 in
  let r = Codec.Reader.of_string s in
  try
    ignore (Codec.Reader.u64 r);
    Alcotest.fail "truncated read must raise"
  with Codec.Corrupt _ -> ()

let prop_codec_f64_roundtrip =
  QCheck.Test.make ~name:"codec f64 roundtrip" ~count:300
    QCheck.(float_range (-1e12) 1e12)
    (fun x ->
      let w = Codec.Writer.create () in
      Codec.Writer.f64 w x;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      Codec.Reader.f64 r = x)

let test_crc_detects_flip () =
  let s = "the quick brown fox" in
  let flipped = "the quick brown fix" in
  if Codec.crc s = Codec.crc flipped then Alcotest.fail "crc collision"

(* Inode *)

let test_inode_addr_map () =
  let i = Inode.make ~ino:7 ~kind:Inode.Regular ~now:0. in
  Alcotest.(check int) "hole" Inode.addr_none (Inode.get_addr i 5);
  Inode.set_addr i 5 1234;
  Alcotest.(check int) "set" 1234 (Inode.get_addr i 5);
  Alcotest.(check int) "intermediate holes" Inode.addr_none
    (Inode.get_addr i 3);
  Alcotest.(check int) "nblocks" 6 i.Inode.nblocks

let test_inode_truncate_returns_addrs () =
  let i = Inode.make ~ino:7 ~kind:Inode.Regular ~now:0. in
  Inode.set_addr i 0 10;
  Inode.set_addr i 1 11;
  Inode.set_addr i 3 13;
  let dropped = Inode.truncate_blocks i ~blocks:1 in
  Alcotest.(check (list int)) "dropped non-holes" [ 11; 13 ] dropped;
  Alcotest.(check int) "nblocks" 1 i.Inode.nblocks;
  Alcotest.(check int) "kept" 10 (Inode.get_addr i 0)

let prop_inode_roundtrip =
  QCheck.Test.make ~name:"inode serialize/deserialize roundtrip (direct)"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (int_range 0 100000))
    (fun addrs ->
      let i = Inode.make ~ino:42 ~kind:Inode.Directory ~now:1.5 in
      List.iteri (fun k a -> Inode.set_addr i k a) addrs;
      i.Inode.size <- List.length addrs * 4096;
      let i', indirect = Inode.deserialize (Inode.serialize i ~indirect:[]) in
      indirect = []
      && i'.Inode.ino = 42
      && i'.Inode.size = i.Inode.size
      && i'.Inode.nblocks = i.Inode.nblocks
      && List.for_all
           (fun k -> Inode.get_addr i' k = Inode.get_addr i k)
           (List.init (List.length addrs) Fun.id))

(* LFS *)

let test_lfs_write_read_roundtrip () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l
        [ (f.Inode.ino, 0, block_of_char 'a'); (f.Inode.ino, 1, block_of_char 'b') ];
      Alcotest.(check string) "block 0" (String.make 4096 'a')
        (Data.to_string (read_block l f 0));
      Alcotest.(check string) "block 1" (String.make 4096 'b')
        (Data.to_string (read_block l f 1));
      (* a hole reads back as nothing *)
      Alcotest.(check int) "hole size" 4096 (Data.length (read_block l f 9)))

let test_lfs_persists_across_remount () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let ino =
        let l = Lfs.format_and_mount ~config:small_lfs_config s drv
            ~block_bytes:4096 in
        let f = alloc_inode l ~kind:Inode.Regular in
        f.Inode.size <- 8192;
        l.Layout.update_inode f;
        write_blocks l
          [ (f.Inode.ino, 0, block_of_char 'x');
            (f.Inode.ino, 1, block_of_char 'y') ];
        sync_l l;
        f.Inode.ino
      in
      (* fresh mount from disk state only *)
      let l2 = Lfs.mount ~config:small_lfs_config s drv in
      match get_inode l2 ino with
      | None -> Alcotest.fail "inode lost across remount"
      | Some f ->
        Alcotest.(check int) "size" 8192 f.Inode.size;
        Alcotest.(check string) "block 0" (String.make 4096 'x')
          (Data.to_string (read_block l2 f 0));
        Alcotest.(check string) "block 1" (String.make 4096 'y')
          (Data.to_string (read_block l2 f 1)))

let test_lfs_indirect_blocks_roundtrip () =
  run_fs (fun s ->
      let drv = mem_driver ~sectors:32768 s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      (* more blocks than ndirect (32) forces indirect spill *)
      let n = 50 in
      write_blocks l
        (List.init n (fun i ->
             (f.Inode.ino, i, block_of_char (Char.chr (Char.code 'A' + (i mod 26))))));
      sync_l l;
      let l2 = Lfs.mount ~config:small_lfs_config s drv in
      match get_inode l2 f.Inode.ino with
      | None -> Alcotest.fail "inode lost"
      | Some f' ->
        for i = 0 to n - 1 do
          let expect = String.make 4096 (Char.chr (Char.code 'A' + (i mod 26))) in
          Alcotest.(check string)
            (Printf.sprintf "block %d" i)
            expect
            (Data.to_string (read_block l2 f' i))
        done)

let test_lfs_overwrite_updates_in_log () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l [ (f.Inode.ino, 0, block_of_char '1') ];
      write_blocks l [ (f.Inode.ino, 0, block_of_char '2') ];
      Alcotest.(check string) "latest wins" (String.make 4096 '2')
        (Data.to_string (read_block l f 0)))

let test_lfs_cleaner_preserves_data () =
  run_fs (fun s ->
      (* small disk (2 MB, ~30 segments) so overwrites must trigger
         cleaning *)
      let drv = mem_driver ~sectors:4096 s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      (* Overwrite a small file many times: the log fills with dead
         blocks and the cleaner must run. *)
      for round = 0 to 60 do
        write_blocks l
          (List.init 8 (fun i ->
               (f.Inode.ino, i,
                block_of_char (Char.chr (Char.code 'a' + ((round + i) mod 26))))))
      done;
      let cleanings =
        match List.assoc_opt "cleanings" (l.Layout.layout_stats ()) with
        | Some c -> int_of_float c
        | None -> 0
      in
      if cleanings = 0 then Alcotest.fail "cleaner never ran";
      (* last round was round 60 *)
      for i = 0 to 7 do
        let expect = String.make 4096 (Char.chr (Char.code 'a' + ((60 + i) mod 26))) in
        Alcotest.(check string) (Printf.sprintf "block %d intact" i) expect
          (Data.to_string (read_block l f i))
      done)

let test_lfs_greedy_cleaner_also_works () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let cfg = { small_lfs_config with Lfs.cleaner = Lfs.Greedy } in
      let l = Lfs.format_and_mount ~config:cfg s drv ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      for round = 0 to 60 do
        write_blocks l
          [ (f.Inode.ino, round mod 4, block_of_char 'g') ]
      done;
      Alcotest.(check string) "data intact" (String.make 4096 'g')
        (Data.to_string (read_block l f 0)))

let test_lfs_truncate_frees_segments () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l
        (List.init 20 (fun i -> (f.Inode.ino, i, block_of_char 'z')));
      let free_before = l.Layout.free_blocks () in
      truncate_l l f ~blocks:0;
      ignore free_before;
      Alcotest.(check int) "no mapped blocks" 0
        (List.length (Inode.mapped f));
      Alcotest.(check int) "hole read" 4096
        (Data.length (read_block l f 0)))

let test_lfs_free_inode_forgets () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l [ (f.Inode.ino, 0, block_of_char 'q') ];
      free_inode l f.Inode.ino;
      Alcotest.(check bool) "gone" true (get_inode l f.Inode.ino = None))

let test_lfs_roll_forward_recovers () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let ino =
        let l = Lfs.format_and_mount ~config:small_lfs_config s drv
            ~block_bytes:4096 in
        let f = alloc_inode l ~kind:Inode.Regular in
        write_blocks l [ (f.Inode.ino, 0, block_of_char 'c') ];
        sync_l l;
        (* post-checkpoint writes: enough to seal full segments, then
           "crash" without checkpointing *)
        for i = 0 to 39 do
          write_blocks l [ (f.Inode.ino, 1 + (i mod 20), block_of_char 'd') ]
        done;
        f.Inode.ino
      in
      let l2 = Lfs.mount ~config:small_lfs_config s drv in
      match get_inode l2 ino with
      | None -> Alcotest.fail "inode lost in recovery"
      | Some f ->
        (* the checkpointed block must be there; rolled-forward blocks
           for any sealed segment must read back as 'd' *)
        Alcotest.(check string) "checkpointed block" (String.make 4096 'c')
          (Data.to_string (read_block l2 f 0));
        if f.Inode.nblocks > 1 then begin
          match Inode.get_addr f 1 with
          | a when a = Inode.addr_none -> ()
          | _ ->
            Alcotest.(check string) "rolled-forward block"
              (String.make 4096 'd')
              (Data.to_string (read_block l2 f 1))
        end)

let test_lfs_disk_full_raises () =
  run_fs (fun s ->
      let drv = mem_driver ~sectors:4096 s in
      (* 2 MB disk, 16-block segments: fill it with live data *)
      let cfg = { small_lfs_config with Lfs.min_free_segments = 1;
                  target_free_segments = 2 } in
      let l = Lfs.format_and_mount ~config:cfg s drv ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      (* one batch exceeding the log's capacity: all blocks live, the
         cleaner has nothing to reclaim, the log must report full *)
      match
        l.Layout.write_blocks
          (List.init 600 (fun i -> (f.Inode.ino, i, block_of_char 'f')))
      with
      | Error Capfs_core.Errno.ENOSPC -> ()
      | Ok () -> Alcotest.fail "expected ENOSPC"
      | Error e ->
        Alcotest.failf "expected ENOSPC, got %s" (Capfs_core.Errno.to_string e))

let test_lfs_stats_exposed () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l
        (List.init 40 (fun i -> (f.Inode.ino, i, block_of_char 'k')));
      let stats = l.Layout.layout_stats () in
      List.iter
        (fun k ->
          if not (List.mem_assoc k stats) then
            Alcotest.failf "missing stat %s" k)
        [ "free_segments"; "sealed_segments"; "cleanings"; "log_blocks_written" ];
      let sealed = List.assoc "sealed_segments" stats in
      if sealed < 1. then Alcotest.fail "expected sealed segments")

(* Failure injection: damaged images must be detected, and a torn
   checkpoint must fall back to the other region. *)

let corrupt_sector drv ~lba =
  (* overwrite with garbage *)
  Driver.write_exn drv ~lba (Data.of_string (String.make 512 '\xde'))

let test_lfs_corrupt_superblock_detected () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l [ (f.Inode.ino, 0, block_of_char 'v') ];
      sync_l l;
      corrupt_sector drv ~lba:0;
      match Lfs.mount ~config:small_lfs_config s drv with
      | _ -> Alcotest.fail "corrupt superblock must be rejected"
      | exception Codec.Corrupt _ -> ())

let test_lfs_torn_checkpoint_falls_back () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let ino =
        let l = Lfs.format_and_mount ~config:small_lfs_config s drv
            ~block_bytes:4096 in
        let f = alloc_inode l ~kind:Inode.Regular in
        write_blocks l [ (f.Inode.ino, 0, block_of_char 'c') ];
        sync_l l;
        (* a second sync writes the alternate region *)
        write_blocks l [ (f.Inode.ino, 1, block_of_char 'd') ];
        sync_l l;
        f.Inode.ino
      in
      (* tear the newer checkpoint region (region A and B alternate; the
         2nd sync went to B at block 9 with checkpoint_blocks = 8) *)
      corrupt_sector drv ~lba:(9 * 8);
      let l2 = Lfs.mount ~config:small_lfs_config s drv in
      match get_inode l2 ino with
      | None -> Alcotest.fail "fallback checkpoint lost the inode"
      | Some f ->
        (* the older checkpoint plus roll-forward still reads block 0 *)
        Alcotest.(check string) "block 0 intact" (String.make 4096 'c')
          (Data.to_string (read_block l2 f 0)))

let test_ffs_corrupt_superblock_detected () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Ffs.format_and_mount
          ~config:{ Ffs.group_blocks = 128; inodes_per_group = 16 }
          s drv ~block_bytes:4096 in
      sync_l l;
      corrupt_sector drv ~lba:0;
      match Ffs.mount s drv with
      | _ -> Alcotest.fail "corrupt ffs superblock must be rejected"
      | exception Codec.Corrupt _ -> ())

let test_lfs_adopted_blocks_survive_cleaning_pressure () =
  run_fs (fun s ->
      let drv = mem_driver ~sectors:4096 s in
      let l = Lfs.format_and_mount ~config:small_lfs_config s drv
          ~block_bytes:4096 in
      (* adopt a pre-existing file, then churn real writes around it *)
      let old = alloc_inode l ~kind:Inode.Regular in
      adopt_l l old ~blocks:8;
      old.Inode.size <- 8 * 4096;
      l.Layout.update_inode old;
      let churn = alloc_inode l ~kind:Inode.Regular in
      for round = 0 to 40 do
        write_blocks l
          [ (churn.Inode.ino, round mod 6, block_of_char 'w') ]
      done;
      (* the adopted addresses must still be mapped *)
      for i = 0 to 7 do
        if Inode.get_addr old i = Inode.addr_none then
          Alcotest.failf "adopted block %d lost its address" i
      done)

(* FFS *)

let small_ffs_config = { Ffs.group_blocks = 128; inodes_per_group = 16 }

let test_ffs_write_read_roundtrip () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Ffs.format_and_mount ~config:small_ffs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l
        [ (f.Inode.ino, 0, block_of_char 'm'); (f.Inode.ino, 1, block_of_char 'n') ];
      Alcotest.(check string) "block 0" (String.make 4096 'm')
        (Data.to_string (read_block l f 0));
      Alcotest.(check string) "block 1" (String.make 4096 'n')
        (Data.to_string (read_block l f 1)))

let test_ffs_persists_across_remount () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let ino =
        let l = Ffs.format_and_mount ~config:small_ffs_config s drv
            ~block_bytes:4096 in
        let f = alloc_inode l ~kind:Inode.Regular in
        f.Inode.size <- 4096;
        l.Layout.update_inode f;
        write_blocks l [ (f.Inode.ino, 0, block_of_char 'p') ];
        sync_l l;
        f.Inode.ino
      in
      let l2 = Ffs.mount s drv in
      match get_inode l2 ino with
      | None -> Alcotest.fail "ffs inode lost"
      | Some f ->
        Alcotest.(check int) "size" 4096 f.Inode.size;
        Alcotest.(check string) "data" (String.make 4096 'p')
          (Data.to_string (read_block l2 f 0)))

let test_ffs_blocks_stay_put_on_overwrite () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Ffs.format_and_mount ~config:small_ffs_config s drv
          ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l [ (f.Inode.ino, 0, block_of_char '1') ];
      let a1 = Inode.get_addr f 0 in
      write_blocks l [ (f.Inode.ino, 0, block_of_char '2') ];
      Alcotest.(check int) "update in place" a1 (Inode.get_addr f 0);
      Alcotest.(check string) "new data" (String.make 4096 '2')
        (Data.to_string (read_block l f 0)))

let test_ffs_free_reuses_blocks () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Ffs.format_and_mount ~config:small_ffs_config s drv
          ~block_bytes:4096 in
      let free0 = l.Layout.free_blocks () in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l
        (List.init 10 (fun i -> (f.Inode.ino, i, block_of_char 'r')));
      Alcotest.(check int) "10 used" (free0 - 10) (l.Layout.free_blocks ());
      truncate_l l f ~blocks:0;
      Alcotest.(check int) "freed" free0 (l.Layout.free_blocks ())

)

let test_ffs_inode_numbers_unique () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Ffs.format_and_mount ~config:small_ffs_config s drv
          ~block_bytes:4096 in
      let seen = Hashtbl.create 64 in
      for _ = 1 to 40 do
        let f = alloc_inode l ~kind:Inode.Regular in
        if Hashtbl.mem seen f.Inode.ino then
          Alcotest.failf "duplicate ino %d" f.Inode.ino;
        Hashtbl.replace seen f.Inode.ino ()
      done)

(* JFS — the metadata-journaling layout *)

let jfs_config = { Jfs.journal_blocks = 8 }

let test_jfs_write_read_roundtrip () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Jfs.format_and_mount ~config:jfs_config s drv ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l
        [ (f.Inode.ino, 0, block_of_char 'j'); (f.Inode.ino, 1, block_of_char 'k') ];
      Alcotest.(check string) "block 0" (String.make 4096 'j')
        (Data.to_string (read_block l f 0));
      Alcotest.(check string) "block 1" (String.make 4096 'k')
        (Data.to_string (read_block l f 1)))

let test_jfs_journal_replay_on_mount () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let ino =
        let l = Jfs.format_and_mount ~config:jfs_config s drv
            ~block_bytes:4096 in
        let f = alloc_inode l ~kind:Inode.Regular in
        f.Inode.size <- 8192;
        l.Layout.update_inode f;
        write_blocks l
          [ (f.Inode.ino, 0, block_of_char 'p');
            (f.Inode.ino, 1, block_of_char 'q') ];
        sync_l l;
        (* a deletion in a later commit must also replay *)
        let victim = alloc_inode l ~kind:Inode.Regular in
        write_blocks l [ (victim.Inode.ino, 0, block_of_char 'v') ];
        sync_l l;
        free_inode l victim.Inode.ino;
        sync_l l;
        f.Inode.ino
      in
      let l2 = Jfs.mount s drv in
      (match get_inode l2 ino with
      | None -> Alcotest.fail "journal replay lost the inode"
      | Some f ->
        Alcotest.(check int) "size" 8192 f.Inode.size;
        Alcotest.(check string) "data" (String.make 4096 'p')
          (Data.to_string (read_block l2 f 0)));
      Alcotest.(check bool) "deleted inode stays deleted" true
        (get_inode l2 (ino + 1) = None))

let test_jfs_uncommitted_changes_lost_on_crash () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let committed, uncommitted =
        let l = Jfs.format_and_mount ~config:jfs_config s drv
            ~block_bytes:4096 in
        let a = alloc_inode l ~kind:Inode.Regular in
        write_blocks l [ (a.Inode.ino, 0, block_of_char 'a') ];
        sync_l l;
        (* no sync after this one: a crash forgets it *)
        let b = alloc_inode l ~kind:Inode.Regular in
        write_blocks l [ (b.Inode.ino, 0, block_of_char 'b') ];
        (a.Inode.ino, b.Inode.ino)
      in
      let l2 = Jfs.mount s drv in
      Alcotest.(check bool) "committed survives" true
        (get_inode l2 committed <> None);
      Alcotest.(check bool) "uncommitted is gone" true
        (get_inode l2 uncommitted = None))

let test_jfs_compaction_keeps_state () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Jfs.format_and_mount ~config:jfs_config s drv ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      (* many small commits overflow an 8-block journal repeatedly *)
      for round = 0 to 59 do
        write_blocks l
          [ (f.Inode.ino, round mod 4,
             block_of_char (Char.chr (97 + (round mod 26)))) ];
        sync_l l
      done;
      let compactions = List.assoc "compactions" (l.Layout.layout_stats ()) in
      if compactions < 1. then Alcotest.fail "journal never compacted";
      let l2 = Jfs.mount s drv in
      match get_inode l2 f.Inode.ino with
      | None -> Alcotest.fail "inode lost across compactions"
      | Some f' ->
        Alcotest.(check string) "latest committed data"
          (String.make 4096 (Char.chr (97 + (56 mod 26))))
          (Data.to_string (read_block l2 f' 0)))

let test_jfs_free_blocks_accounting () =
  run_fs (fun s ->
      let drv = mem_driver s in
      let l = Jfs.format_and_mount ~config:jfs_config s drv ~block_bytes:4096 in
      let free0 = l.Layout.free_blocks () in
      let f = alloc_inode l ~kind:Inode.Regular in
      write_blocks l
        (List.init 10 (fun i -> (f.Inode.ino, i, block_of_char 'z')));
      Alcotest.(check int) "allocated" (free0 - 10) (l.Layout.free_blocks ());
      truncate_l l f ~blocks:0;
      Alcotest.(check int) "freed" free0 (l.Layout.free_blocks ()))

(* Simulator layout *)

let test_sim_layout_sticky_addresses () =
  run_fs (fun s ->
      let bus = Capfs_disk.Bus.scsi2 s in
      let disk = Capfs_disk.Sim_disk.create s Capfs_disk.Disk_model.hp97560 bus in
      let drv = Driver.create s (Driver.sim_transport disk) in
      let l = Sim_layout.create ~seed:7 s drv ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      (* reading the same block twice must hit the same disk address:
         timing of the second read shows the on-disk cache hit *)
      let t0 = Sched.now s in
      ignore (read_block l f 0);
      let first = Sched.now s -. t0 in
      let t1 = Sched.now s in
      ignore (read_block l f 0);
      let second = Sched.now s -. t1 in
      if second >= first then
        Alcotest.failf
          "sticky address should re-hit the disk cache (%.5f vs %.5f)" second
          first)

let test_sim_layout_deterministic_by_seed () =
  let run seed =
    let order = ref [] in
    run_fs (fun s ->
        let mem = Driver.mem_transport ~sector_bytes:512 ~total_sectors:8192 s () in
        let drv = Driver.create s mem in
        let l = Sim_layout.create ~seed s drv ~block_bytes:4096 in
        let f = alloc_inode l ~kind:Inode.Regular in
        write_blocks l [ (f.Inode.ino, 0, block_of_char 'w') ];
        order := l.Layout.layout_stats ());
    !order
  in
  Alcotest.(check bool) "same seed same placement" true (run 3 = run 3)

let test_sim_layout_charges_first_touch () =
  run_fs (fun s ->
      let reg = Capfs_stats.Registry.create () in
      let mem = Driver.mem_transport ~sector_bytes:512 ~total_sectors:8192 s () in
      let drv = Driver.create s mem in
      let l = Sim_layout.create ~registry:reg ~seed:5 s drv ~block_bytes:4096 in
      let f = alloc_inode l ~kind:Inode.Regular in
      ignore (read_block l f 0);
      ignore (read_block l f 1);
      match Capfs_stats.Registry.find reg "simlayout.guesses" with
      | Some st ->
        Alcotest.(check int) "one placement guess" 1
          (Capfs_stats.Stat.count st)
      | None -> Alcotest.fail "guesses stat missing")

(* Cross-layout property: random write/read sequences always read back
   the last write, on both LFS and FFS. *)
let prop_layout_read_after_write layout_name make_layout =
  QCheck.Test.make
    ~name:(layout_name ^ " reads back the last write")
    ~count:30
    QCheck.(
      list_of_size Gen.(int_range 1 40)
        (pair (int_range 0 2) (int_range 0 11)))
    (fun ops ->
      let ok = ref true in
      run_fs (fun s ->
          let drv = mem_driver ~sectors:16384 s in
          let l = make_layout s drv in
          let files = Array.init 3 (fun _ -> alloc_inode l ~kind:Inode.Regular) in
          let model : (int * int, char) Hashtbl.t = Hashtbl.create 64 in
          List.iteri
            (fun i (fidx, blk) ->
              let c = Char.chr (Char.code 'a' + (i mod 26)) in
              write_blocks l [ (files.(fidx).Inode.ino, blk, block_of_char c) ];
              Hashtbl.replace model (fidx, blk) c)
            ops;
          Hashtbl.iter
            (fun (fidx, blk) c ->
              let got = Data.to_string (read_block l files.(fidx) blk) in
              if got <> String.make 4096 c then ok := false)
            model);
      !ok)

let prop_lfs_read_after_write =
  prop_layout_read_after_write "lfs" (fun s drv ->
      Lfs.format_and_mount ~config:small_lfs_config s drv ~block_bytes:4096)

let prop_ffs_read_after_write =
  prop_layout_read_after_write "ffs" (fun s drv ->
      Ffs.format_and_mount ~config:small_ffs_config s drv ~block_bytes:4096)

let prop_jfs_read_after_write =
  prop_layout_read_after_write "jfs" (fun s drv ->
      Jfs.format_and_mount ~config:jfs_config s drv ~block_bytes:4096)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_codec_f64_roundtrip;
      prop_inode_roundtrip;
      prop_lfs_read_after_write;
      prop_ffs_read_after_write;
      prop_jfs_read_after_write;
    ]

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec truncation detected" `Quick
      test_codec_truncation_detected;
    Alcotest.test_case "crc detects flip" `Quick test_crc_detects_flip;
    Alcotest.test_case "inode addr map" `Quick test_inode_addr_map;
    Alcotest.test_case "inode truncate" `Quick test_inode_truncate_returns_addrs;
    Alcotest.test_case "lfs write/read roundtrip" `Quick
      test_lfs_write_read_roundtrip;
    Alcotest.test_case "lfs persists across remount" `Quick
      test_lfs_persists_across_remount;
    Alcotest.test_case "lfs indirect blocks" `Quick
      test_lfs_indirect_blocks_roundtrip;
    Alcotest.test_case "lfs overwrite in log" `Quick
      test_lfs_overwrite_updates_in_log;
    Alcotest.test_case "lfs cleaner preserves data" `Quick
      test_lfs_cleaner_preserves_data;
    Alcotest.test_case "lfs greedy cleaner" `Quick
      test_lfs_greedy_cleaner_also_works;
    Alcotest.test_case "lfs truncate" `Quick test_lfs_truncate_frees_segments;
    Alcotest.test_case "lfs free inode" `Quick test_lfs_free_inode_forgets;
    Alcotest.test_case "lfs roll-forward recovery" `Quick
      test_lfs_roll_forward_recovers;
    Alcotest.test_case "lfs disk full" `Quick test_lfs_disk_full_raises;
    Alcotest.test_case "lfs stats exposed" `Quick test_lfs_stats_exposed;
    Alcotest.test_case "lfs corrupt superblock" `Quick
      test_lfs_corrupt_superblock_detected;
    Alcotest.test_case "lfs torn checkpoint fallback" `Quick
      test_lfs_torn_checkpoint_falls_back;
    Alcotest.test_case "ffs corrupt superblock" `Quick
      test_ffs_corrupt_superblock_detected;
    Alcotest.test_case "adopted blocks survive churn" `Quick
      test_lfs_adopted_blocks_survive_cleaning_pressure;
    Alcotest.test_case "ffs write/read roundtrip" `Quick
      test_ffs_write_read_roundtrip;
    Alcotest.test_case "ffs persists across remount" `Quick
      test_ffs_persists_across_remount;
    Alcotest.test_case "ffs update in place" `Quick
      test_ffs_blocks_stay_put_on_overwrite;
    Alcotest.test_case "ffs free reuses blocks" `Quick
      test_ffs_free_reuses_blocks;
    Alcotest.test_case "ffs unique inos" `Quick test_ffs_inode_numbers_unique;
    Alcotest.test_case "jfs write/read" `Quick test_jfs_write_read_roundtrip;
    Alcotest.test_case "jfs journal replay" `Quick
      test_jfs_journal_replay_on_mount;
    Alcotest.test_case "jfs crash loses uncommitted only" `Quick
      test_jfs_uncommitted_changes_lost_on_crash;
    Alcotest.test_case "jfs compaction" `Quick test_jfs_compaction_keeps_state;
    Alcotest.test_case "jfs free accounting" `Quick
      test_jfs_free_blocks_accounting;
    Alcotest.test_case "sim layout sticky" `Quick
      test_sim_layout_sticky_addresses;
    Alcotest.test_case "sim layout deterministic" `Quick
      test_sim_layout_deterministic_by_seed;
    Alcotest.test_case "sim layout first-touch charge" `Quick
      test_sim_layout_charges_first_touch;
  ]
  @ qsuite
