type t = {
  l_name : string;
  block_bytes : int;
  total_blocks : int;
  alloc_inode : kind:Inode.kind -> Inode.t;
  get_inode : int -> Inode.t option;
  update_inode : Inode.t -> unit;
  free_inode : int -> unit;
  read_block : Inode.t -> int -> Capfs_disk.Data.t;
  write_blocks : (int * int * Capfs_disk.Data.t) list -> unit;
  truncate : Inode.t -> blocks:int -> unit;
  adopt : Inode.t -> blocks:int -> unit;
  sync : unit -> unit;
  free_blocks : unit -> int;
  layout_stats : unit -> (string * float) list;
}

let read_span t inode ~first ~count =
  Capfs_disk.Data.concat
    (List.init count (fun i -> t.read_block inode (first + i)))
