type window = { start : float; stop : float; summary : Welford.t }

type t = {
  width : float;
  mutable closed : window list; (* reverse chronological *)
  mutable current : window option;
  overall : Welford.t;
}

let create ~width () =
  if width <= 0. then invalid_arg "Interval.create: width <= 0";
  { width; closed = []; current = None; overall = Welford.create () }

let window_for t time =
  let start = t.width *. floor (time /. t.width) in
  { start; stop = start +. t.width; summary = Welford.create () }

let add t ~time x =
  Welford.add t.overall x;
  match t.current with
  | None ->
    let w = window_for t time in
    Welford.add w.summary x;
    t.current <- Some w
  | Some w when time >= w.start && time < w.stop -> Welford.add w.summary x
  | Some w when time >= w.stop ->
    t.closed <- w :: t.closed;
    let w' = window_for t time in
    Welford.add w'.summary x;
    t.current <- Some w'
  | Some _ -> () (* late observation: overall only *)

let windows t = List.rev t.closed

let flush t =
  match t.current with
  | None -> ()
  | Some w ->
    t.closed <- w :: t.closed;
    t.current <- None

let overall t = t.overall

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun w ->
      Format.fprintf ppf "[%10.1f, %10.1f) %a@," w.start w.stop Welford.pp
        w.summary)
    (windows t);
  (match t.current with
  | Some w ->
    Format.fprintf ppf "[%10.1f, %10.1f) %a (open)@," w.start w.stop
      Welford.pp w.summary
  | None -> ());
  Format.fprintf ppf "overall: %a@]" Welford.pp t.overall
