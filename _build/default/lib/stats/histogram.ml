type scheme =
  | Linear of { lo : float; width : float }
  | Log of { log_lo : float; log_width : float }

type t = {
  scheme : scheme;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let linear ~lo ~hi ~buckets =
  if hi <= lo then invalid_arg "Histogram.linear: hi <= lo";
  if buckets < 1 then invalid_arg "Histogram.linear: buckets < 1";
  let width = (hi -. lo) /. float_of_int buckets in
  {
    scheme = Linear { lo; width };
    counts = Array.make buckets 0;
    underflow = 0;
    overflow = 0;
    total = 0;
  }

let log ~lo ~hi ~per_decade =
  if lo <= 0. then invalid_arg "Histogram.log: lo <= 0";
  if hi <= lo then invalid_arg "Histogram.log: hi <= lo";
  if per_decade < 1 then invalid_arg "Histogram.log: per_decade < 1";
  let log_lo = log10 lo in
  let log_width = 1. /. float_of_int per_decade in
  let buckets =
    int_of_float (ceil (((log10 hi -. log_lo) /. log_width) -. 1e-9))
  in
  {
    scheme = Log { log_lo; log_width };
    counts = Array.make (Stdlib.max 1 buckets) 0;
    underflow = 0;
    overflow = 0;
    total = 0;
  }

let index t x =
  match t.scheme with
  | Linear { lo; width } -> int_of_float (floor ((x -. lo) /. width))
  | Log { log_lo; log_width } ->
    if x <= 0. then -1
    else int_of_float (floor ((log10 x -. log_lo) /. log_width))

let add ?(weight = 1) t x =
  let i = index t x in
  if i < 0 then t.underflow <- t.underflow + weight
  else if i >= Array.length t.counts then t.overflow <- t.overflow + weight
  else t.counts.(i) <- t.counts.(i) + weight;
  t.total <- t.total + weight

let buckets t = Array.length t.counts

let bounds t i =
  match t.scheme with
  | Linear { lo; width } ->
    (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width))
  | Log { log_lo; log_width } ->
    ( 10. ** (log_lo +. (float_of_int i *. log_width)),
      10. ** (log_lo +. (float_of_int (i + 1) *. log_width)) )

let count t i = t.counts.(i)
let underflow t = t.underflow
let overflow t = t.overflow
let total t = t.total

let cdf t =
  if t.total = 0 then []
  else begin
    let tot = float_of_int t.total in
    let acc = ref t.underflow in
    let points = ref [] in
    for i = 0 to Array.length t.counts - 1 do
      acc := !acc + t.counts.(i);
      let _, hi = bounds t i in
      points := (hi, float_of_int !acc /. tot) :: !points
    done;
    List.rev !points
  end

let quantile t q =
  if t.total = 0 then invalid_arg "Histogram.quantile: empty histogram";
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q out of range";
  let target = q *. float_of_int t.total in
  let rec scan i acc =
    if i >= Array.length t.counts then fst (bounds t (Array.length t.counts - 1))
    else begin
      let acc' = acc +. float_of_int t.counts.(i) in
      if acc' >= target && t.counts.(i) > 0 then begin
        let lo, hi = bounds t i in
        let frac = (target -. acc) /. float_of_int t.counts.(i) in
        lo +. ((hi -. lo) *. Stdlib.max 0. (Stdlib.min 1. frac))
      end
      else scan (i + 1) acc'
    end
  in
  scan 0 (float_of_int t.underflow)

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.underflow <- 0;
  t.overflow <- 0;
  t.total <- 0

let pp ppf t =
  let bar n =
    let width =
      if t.total = 0 then 0 else n * 50 / t.total
    in
    String.make width '#'
  in
  if t.underflow > 0 then
    Format.fprintf ppf "@[<h>     <lo : %8d %s@]@," t.underflow (bar t.underflow);
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        let lo, hi = bounds t i in
        Format.fprintf ppf "@[<h>[%.4g, %.4g): %8d %s@]@," lo hi n (bar n)
      end)
    t.counts;
  if t.overflow > 0 then
    Format.fprintf ppf "@[<h>    >=hi : %8d %s@]@," t.overflow (bar t.overflow)
