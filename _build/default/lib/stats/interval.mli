(** Interval summaries.

    Patsy "shows measurements every 15 minutes of simulation time and of
    the overall simulation". An [Interval.t] accumulates observations into
    fixed-width time windows and retains the per-window summary plus a
    whole-run summary. The caller supplies the observation time (virtual
    or real), so this module is clock-agnostic. *)

type t

type window = {
  start : float;  (** window start time (inclusive) *)
  stop : float;   (** window end time (exclusive) *)
  summary : Welford.t;
}

(** [create ~width ()] accumulates into windows of [width] time units
    starting at the time of the first observation (rounded down to a
    multiple of [width]). Raises [Invalid_argument] if [width <= 0]. *)
val create : width:float -> unit -> t

(** [add t ~time x] records observation [x] made at [time]. Times may
    arrive slightly out of order; an observation belonging to an already
    closed window is folded into the overall summary only. *)
val add : t -> time:float -> float -> unit

(** Closed windows in chronological order (the currently open window is
    not included until a later observation closes it or {!flush} runs). *)
val windows : t -> window list

(** Close the open window, if any. *)
val flush : t -> unit

(** Whole-run summary over every observation. *)
val overall : t -> Welford.t

val pp : Format.formatter -> t -> unit
