let () =
  Alcotest.run "capfs"
    [ ("stats", Test_stats.suite); ("obs", Test_obs.suite); ("sched", Test_sched.suite); ("disk", Test_disk.suite); ("cache", Test_cache.suite); ("layout", Test_layout.suite); ("trace", Test_trace.suite); ("core", Test_core.suite); ("fault", Test_fault.suite); ("patsy", Test_patsy.suite); ("pfs", Test_pfs.suite); ("server", Test_server.suite); ("cached_client", Test_cached_client.suite); ("diffval", Test_diffval.suite); ("integration", Test_integration.suite); ("ccache", Test_ccache.suite) ]
