(* Tests for the block cache: hit/miss accounting, LRU lists, flush
   policies (30-s update, UPS demand, NVRAM), write absorption,
   invalidation, and the replacement policies. *)

open Capfs_cache
module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data

let vsched () = Sched.create ~clock:`Virtual ()

(* Shorthand for packed block keys. *)
let k = Block.Key.v
let key_t = Alcotest.testable Block.Key.pp Block.Key.equal

(* A writeback sink recording every flushed block, with optional delay to
   model disk time. *)
type sink = {
  mutable flushed : (int * int * Data.t) list list;
  mutable blocks_written : int;
}

let make_sink ?(delay = 0.) sched =
  let sink = { flushed = []; blocks_written = 0 } in
  let writeback batch =
    if delay > 0. then Sched.sleep sched delay;
    sink.flushed <- batch :: sink.flushed;
    sink.blocks_written <- sink.blocks_written + List.length batch
  in
  (sink, writeback)

let demand_config ?(nvram = 0) ?(scope = `Whole_file) ?(async = true)
    ?(coalesce = false) ?(flush_window = 4) ?(max_extent = 64) capacity =
  {
    Cache.block_bytes = 4096;
    capacity_blocks = capacity;
    nvram_blocks = nvram;
    trigger = Cache.Demand;
    scope;
    async_flush = async;
    mem_copy_rate = 0.;
    coalesce;
    flush_window;
    max_extent_blocks = max_extent;
  }

let run_fs f =
  let s = vsched () in
  ignore (Sched.spawn s (fun () -> f s));
  Sched.run s

let fill_const n _key = Data.sim n

let test_read_miss_then_hit () =
  run_fs (fun s ->
      let _, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 8) in
      let fills = ref 0 in
      let fill _key =
        incr fills;
        Data.of_string "abcd"
      in
      let d1 = Cache.read c (k 1 0) ~fill in
      Alcotest.(check string) "filled" "abcd" (Data.to_string d1);
      let d2 = Cache.read c (k 1 0) ~fill in
      Alcotest.(check string) "cached" "abcd" (Data.to_string d2);
      Alcotest.(check int) "fill ran once" 1 !fills;
      Alcotest.(check int) "one block" 1 (Cache.block_count c))

let test_write_then_read_back () =
  run_fs (fun s ->
      let _, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 8) in
      Cache.write c (k 1 0) (Data.of_string "dirty!");
      let d = Cache.read c (k 1 0) ~fill:(fun _ -> Alcotest.fail "no fill") in
      Alcotest.(check string) "dirty read back" "dirty!" (Data.to_string d);
      Alcotest.(check int) "dirty" 1 (Cache.dirty_count c))

let test_lru_eviction_order () =
  run_fs (fun s ->
      let _, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 3) in
      (* fill 3 frames clean *)
      for i = 0 to 2 do
        ignore (Cache.read c (k 1 i) ~fill:(fill_const 16))
      done;
      (* touch block 0 so block 1 is the LRU *)
      ignore (Cache.read c (k 1 0) ~fill:(fill_const 16));
      (* a 4th block evicts block 1 *)
      ignore (Cache.read c (k 1 3) ~fill:(fill_const 16));
      Alcotest.(check bool) "b0 kept" true (Cache.contains c (k 1 0));
      Alcotest.(check bool) "b1 evicted" false (Cache.contains c (k 1 1));
      Alcotest.(check bool) "b2 kept" true (Cache.contains c (k 1 2));
      Alcotest.(check bool) "b3 present" true (Cache.contains c (k 1 3)))

let test_dirty_blocks_never_evicted_silently () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 3) in
      Cache.write c (k 1 0) (Data.sim 16);
      Cache.write c (k 1 1) (Data.sim 16);
      Cache.write c (k 1 2) (Data.sim 16);
      (* cache full of dirty; a read miss must force a flush, not drop *)
      ignore (Cache.read c (k 2 0) ~fill:(fill_const 16));
      Sched.sleep s 0.01;
      Alcotest.(check bool) "flushed something" true (sink.blocks_written > 0))

let test_demand_flush_whole_file () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let c =
        Cache.create ~writeback:wb s (demand_config ~scope:`Whole_file 4)
      in
      (* oldest dirty is file 7; file 7 has 3 dirty blocks *)
      Cache.write c (k 7 0) (Data.sim 16);
      Cache.write c (k 7 1) (Data.sim 16);
      Cache.write c (k 7 2) (Data.sim 16);
      Cache.write c (k 9 0) (Data.sim 16);
      (* full: next allocation flushes all of file 7 *)
      ignore (Cache.read c (k 2 0) ~fill:(fill_const 16));
      Sched.sleep s 0.01;
      let flushed_keys =
        List.concat sink.flushed |> List.map (fun (ino, idx, _) -> (ino, idx))
      in
      Alcotest.(check int) "3 blocks of file 7" 3 (List.length flushed_keys);
      Alcotest.(check bool) "all of ino 7" true
        (List.for_all (fun (ino, _) -> ino = 7) flushed_keys))

let test_demand_flush_single_block () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let c =
        Cache.create ~writeback:wb s (demand_config ~scope:`Single_block 4)
      in
      Cache.write c (k 7 0) (Data.sim 16);
      Cache.write c (k 7 1) (Data.sim 16);
      Cache.write c (k 7 2) (Data.sim 16);
      Cache.write c (k 9 0) (Data.sim 16);
      ignore (Cache.read c (k 2 0) ~fill:(fill_const 16));
      Sched.sleep s 0.01;
      let flushed_keys =
        List.concat sink.flushed |> List.map (fun (ino, idx, _) -> (ino, idx))
      in
      Alcotest.(check (list (pair int int))) "only the oldest block"
        [ (7, 0) ] flushed_keys)

(* With coalescing on, a single-block demand flush drags the oldest
   block's file-contiguous dirty neighbours along, and the whole extent
   reaches the writeback sink as one vectored batch. *)
let test_demand_flush_single_block_clusters_when_coalescing () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let c =
        Cache.create ~writeback:wb s
          (demand_config ~scope:`Single_block ~coalesce:true 4)
      in
      Cache.write c (k 7 0) (Data.sim 16);
      Cache.write c (k 7 1) (Data.sim 16);
      Cache.write c (k 7 2) (Data.sim 16);
      Cache.write c (k 9 0) (Data.sim 16);
      ignore (Cache.read c (k 2 0) ~fill:(fill_const 16));
      Sched.sleep s 0.01;
      let batch =
        match List.rev sink.flushed with
        | first :: _ -> List.map (fun (ino, idx, _) -> (ino, idx)) first
        | [] -> Alcotest.fail "nothing flushed"
      in
      Alcotest.(check (list (pair int int)))
        "the oldest block and its file-contiguous neighbours, one batch"
        [ (7, 0); (7, 1); (7, 2) ]
        batch)

(* The extent cap bounds a clustered batch. *)
let test_cluster_respects_max_extent () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let c =
        Cache.create ~writeback:wb s
          (demand_config ~scope:`Single_block ~coalesce:true ~max_extent:2 4)
      in
      Cache.write c (k 7 0) (Data.sim 16);
      Cache.write c (k 7 1) (Data.sim 16);
      Cache.write c (k 7 2) (Data.sim 16);
      Cache.write c (k 9 0) (Data.sim 16);
      ignore (Cache.read c (k 2 0) ~fill:(fill_const 16));
      Sched.sleep s 0.01;
      let first_batch =
        match List.rev sink.flushed with
        | first :: _ -> List.map (fun (ino, idx, _) -> (ino, idx)) first
        | [] -> Alcotest.fail "nothing flushed"
      in
      Alcotest.(check int) "extent capped at 2" 2 (List.length first_batch))

let test_overwrite_absorption () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 8) in
      for _ = 1 to 10 do
        Cache.write c (k 1 0) (Data.sim 16)
      done;
      Cache.sync c;
      (* ten writes, one disk write: nine absorbed in memory *)
      Alcotest.(check int) "single disk write" 1 sink.blocks_written)

let test_delete_absorbs_writes () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 8) in
      Cache.write c (k 1 0) (Data.sim 16);
      Cache.write c (k 1 1) (Data.sim 16);
      Cache.remove_file c 1;
      Cache.sync c;
      Alcotest.(check int) "nothing hit the disk" 0 sink.blocks_written;
      Alcotest.(check int) "cache empty" 0 (Cache.block_count c))

let test_truncate_drops_tail () =
  run_fs (fun s ->
      let _, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 8) in
      for i = 0 to 3 do
        Cache.write c (k 1 i) (Data.sim 16)
      done;
      Cache.truncate c 1 ~from:2;
      Alcotest.(check bool) "b1 kept" true (Cache.contains c (k 1 1));
      Alcotest.(check bool) "b2 dropped" false (Cache.contains c (k 1 2));
      Alcotest.(check bool) "b3 dropped" false (Cache.contains c (k 1 3));
      Alcotest.(check int) "two dirty remain" 2 (Cache.dirty_count c))

let test_periodic_update_flushes_old_dirty () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let cfg =
        {
          (demand_config 16) with
          Cache.trigger =
            Cache.Periodic { max_age = 30.; scan_interval = 5. };
        }
      in
      let c = Cache.create ~writeback:wb s cfg in
      Cache.write c (k 1 0) (Data.sim 16);
      Sched.sleep s 20.;
      Alcotest.(check int) "still buffered at 20s" 0 sink.blocks_written;
      Sched.sleep s 20.;
      Alcotest.(check int) "flushed after 30s + scan" 1 sink.blocks_written;
      Alcotest.(check int) "now clean" 0 (Cache.dirty_count c))

let test_ups_keeps_dirty_indefinitely () =
  run_fs (fun s ->
      let sink, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 16) in
      Cache.write c (k 1 0) (Data.sim 16);
      Sched.sleep s 3600.;
      (* demand-only: an hour passes, nothing is written *)
      Alcotest.(check int) "no writes in an hour" 0 sink.blocks_written;
      Alcotest.(check int) "still dirty" 1 (Cache.dirty_count c))

let test_nvram_capacity_stalls_writer () =
  run_fs (fun s ->
      let _, wb = make_sink ~delay:0.010 s in
      let c =
        Cache.create ~writeback:wb s
          (demand_config ~nvram:2 ~scope:`Single_block 8)
      in
      let t0 = Sched.now s in
      Cache.write c (k 1 0) (Data.sim 16);
      Cache.write c (k 1 1) (Data.sim 16);
      Alcotest.(check (float 1e-9)) "first two writes instant" 0.
        (Sched.now s -. t0);
      (* third write: NVRAM full -> drain the oldest (10ms writeback) *)
      Cache.write c (k 1 2) (Data.sim 16);
      let elapsed = Sched.now s -. t0 in
      if elapsed < 0.009 then
        Alcotest.failf "writer should stall for the drain, took %.4f" elapsed;
      Alcotest.(check int) "nvram bounded" 2 (Cache.nvram_used c))

let test_nvram_whole_file_leaves_more_room () =
  (* Whole-file flush drains every dirty block of the oldest file, so a
     burst of writes to another file stalls less often. *)
  let stalls scope =
    let s = vsched () in
    let total = ref 0. in
    ignore
      (Sched.spawn s (fun () ->
           let _, wb = make_sink ~delay:0.010 s in
           let c = Cache.create ~writeback:wb s
               (demand_config ~nvram:4 ~scope 16) in
           for i = 0 to 3 do
             Cache.write c (k 1 i) (Data.sim 16)
           done;
           let t0 = Sched.now s in
           for i = 0 to 7 do
             Cache.write c (k 2 i) (Data.sim 16)
           done;
           total := Sched.now s -. t0));
    Sched.run s;
    !total
  in
  let whole = stalls `Whole_file and partial = stalls `Single_block in
  if whole >= partial then
    Alcotest.failf "whole-file %.4f should beat partial %.4f" whole partial

let test_concurrent_writes_same_clean_block_nvram () =
  (* Regression: two clients writing the same clean block while the
     NVRAM pool is full used to double-account the frame and corrupt
     the dirty list (deadlocking the whole server). *)
  run_fs (fun s ->
      let _, wb = make_sink ~delay:0.010 s in
      let c =
        Cache.create ~writeback:wb s
          (demand_config ~nvram:2 ~scope:`Single_block 8)
      in
      (* a clean shared block *)
      ignore (Cache.read c (k 7 0) ~fill:(fill_const 16));
      (* fill the NVRAM so clean->dirty transitions stall *)
      Cache.write c (k 1 0) (Data.sim 16);
      Cache.write c (k 1 1) (Data.sim 16);
      let writers_done = ref 0 in
      for _ = 1 to 2 do
        ignore
          (Sched.spawn s (fun () ->
               Cache.write c (k 7 0) (Data.sim 16);
               incr writers_done))
      done;
      Sched.sleep s 1.0;
      Alcotest.(check int) "both writers completed" 2 !writers_done;
      Cache.sync c;
      Alcotest.(check int) "cache drains clean" 0 (Cache.dirty_count c);
      Alcotest.(check int) "nvram accounting intact" 0 (Cache.nvram_used c))

let test_sync_leaves_cache_clean () =
  run_fs (fun s ->
      let sink, wb = make_sink ~delay:0.001 s in
      let c = Cache.create ~writeback:wb s (demand_config 32) in
      for i = 0 to 9 do
        Cache.write c (k i 0) (Data.sim 16)
      done;
      Cache.sync c;
      Alcotest.(check int) "all written" 10 sink.blocks_written;
      Alcotest.(check int) "clean" 0 (Cache.dirty_count c);
      (* blocks survive as clean cached copies *)
      Alcotest.(check int) "still cached" 10 (Cache.block_count c))

let test_flush_file_only_that_file () =
  run_fs (fun s ->
      let sink, wb = make_sink ~delay:0.001 s in
      let c = Cache.create ~writeback:wb s (demand_config 32) in
      Cache.write c (k 1 0) (Data.sim 16);
      Cache.write c (k 2 0) (Data.sim 16);
      Cache.flush_file c 1;
      Alcotest.(check int) "one block written" 1 sink.blocks_written;
      Alcotest.(check int) "file 2 still dirty" 1 (Cache.dirty_count c))

let test_write_during_flush_keeps_block_dirty () =
  run_fs (fun s ->
      let sink, wb = make_sink ~delay:0.010 s in
      let c = Cache.create ~writeback:wb s (demand_config 8) in
      Cache.write c (k 1 0) (Data.of_string "v1");
      (* start a flush, then overwrite while the snapshot is in flight:
         the overwrite must not be lost *)
      ignore (Sched.spawn s (fun () -> Cache.flush_file c 1));
      Sched.sleep s 0.001;
      Cache.write c (k 1 0) (Data.of_string "v2");
      Sched.sleep s 0.1;
      (* fsync re-flushes until stable: two writes, v2 written last *)
      Alcotest.(check int) "two writes reached disk" 2 sink.blocks_written;
      Alcotest.(check int) "stable" 0 (Cache.dirty_count c);
      (match sink.flushed with
      | last :: _ ->
        let _, _, d = List.hd last in
        Alcotest.(check string) "newest contents persisted" "v2"
          (Data.to_string d)
      | [] -> Alcotest.fail "nothing flushed");
      match Cache.peek c (k 1 0) with
      | Some d ->
        Alcotest.(check string) "cache keeps v2" "v2" (Data.to_string d)
      | None -> Alcotest.fail "block must still be cached")

let test_concurrent_misses_share_fill () =
  run_fs (fun s ->
      let _, wb = make_sink s in
      let c = Cache.create ~writeback:wb s (demand_config 8) in
      let fills = ref 0 in
      let fill _key =
        incr fills;
        Sched.sleep s 0.005;
        Data.sim 16
      in
      let done_count = ref 0 in
      for _ = 1 to 5 do
        ignore
          (Sched.spawn s (fun () ->
               ignore (Cache.read c (k 1 0) ~fill);
               incr done_count))
      done;
      Sched.sleep s 0.1;
      Alcotest.(check int) "five readers" 5 !done_count;
      Alcotest.(check int) "one fill" 1 !fills)

let test_sync_flush_delays_allocator () =
  (* §5.2: with synchronous flushing the allocating thread waits for the
     writeback; the async flusher hides it. *)
  let alloc_time async =
    let s = vsched () in
    let elapsed = ref 0. in
    ignore
      (Sched.spawn s (fun () ->
           let _, wb = make_sink ~delay:0.050 s in
           let c = Cache.create ~writeback:wb s (demand_config ~async 2) in
           Cache.write c (k 1 0) (Data.sim 16);
           Cache.write c (k 1 1) (Data.sim 16);
           let t0 = Sched.now s in
           (* miss forces eviction of a dirty block *)
           ignore (Cache.read c (k 2 0) ~fill:(fill_const 16));
           elapsed := Sched.now s -. t0));
    Sched.run s;
    !elapsed
  in
  let sync_cost = alloc_time false in
  if sync_cost < 0.050 then
    Alcotest.failf "sync flush should delay the allocator (%.4f)" sync_cost

let test_mem_copy_rate_charges_time () =
  run_fs (fun s ->
      let _, wb = make_sink s in
      let cfg = { (demand_config 8) with Cache.mem_copy_rate = 1.0e6 } in
      let c = Cache.create ~writeback:wb s cfg in
      let t0 = Sched.now s in
      Cache.write c (k 1 0) (Data.sim 4096);
      let dt = Sched.now s -. t0 in
      (* 4096 bytes at 1 MB/s = ~4.1 ms *)
      Alcotest.(check (float 1e-6)) "copy cost" 0.004096 dt)

let test_stats_recorded () =
  run_fs (fun s ->
      let reg = Capfs_stats.Registry.create () in
      let _, wb = make_sink s in
      let c = Cache.create ~registry:reg ~writeback:wb s (demand_config 4) in
      ignore (Cache.read c (k 1 0) ~fill:(fill_const 16));
      ignore (Cache.read c (k 1 0) ~fill:(fill_const 16));
      Cache.write c (k 1 1) (Data.sim 16);
      Cache.write c (k 1 1) (Data.sim 16);
      Cache.remove_file c 1;
      let count name =
        match Capfs_stats.Registry.find reg ("cache." ^ name) with
        | Some st -> Capfs_stats.Stat.count st
        | None -> Alcotest.failf "stat %s missing" name
      in
      Alcotest.(check int) "hits" 1 (count "hits");
      Alcotest.(check int) "misses" 1 (count "misses");
      Alcotest.(check int) "overwrites" 1 (count "overwrites");
      Alcotest.(check int) "absorbed" 1 (count "absorbed_writes"))

(* Replacement policies *)

let mk_block ino idx =
  Block.make ~key:(k ino idx) ~data:(Data.sim 16) ~now:0.

let test_replacement_lru_basic () =
  let p = Replacement.lru () in
  let b1 = mk_block 1 1 and b2 = mk_block 1 2 and b3 = mk_block 1 3 in
  List.iter (Replacement.insert p) [ b1; b2; b3 ];
  Replacement.access p b1;
  (match Replacement.victim p with
  | Some v -> Alcotest.(check key_t) "b2 is victim" (k 1 2) v.Block.key
  | None -> Alcotest.fail "victim expected");
  Alcotest.(check int) "two left" 2 (Replacement.count p)

let test_replacement_skips_pinned () =
  let p = Replacement.lru () in
  let b1 = mk_block 1 1 and b2 = mk_block 1 2 in
  Replacement.insert p b1;
  Replacement.insert p b2;
  Block.pin b1;
  (match Replacement.victim p with
  | Some v -> Alcotest.(check key_t) "pinned skipped" (k 1 2) v.Block.key
  | None -> Alcotest.fail "victim expected");
  (match Replacement.victim p with
  | Some _ -> Alcotest.fail "only pinned block left"
  | None -> ());
  Block.unpin b1

let test_replacement_lfu_prefers_cold () =
  let p = Replacement.lfu () in
  let hot = mk_block 1 1 and cold = mk_block 1 2 in
  hot.Block.access_count <- 10;
  cold.Block.access_count <- 1;
  Replacement.insert p hot;
  Replacement.insert p cold;
  match Replacement.victim p with
  | Some v -> Alcotest.(check key_t) "cold victim" (k 1 2) v.Block.key
  | None -> Alcotest.fail "victim expected"

let test_replacement_random_deterministic () =
  let run seed =
    let p = Replacement.random ~seed in
    let blocks = List.init 10 (fun i -> mk_block 1 i) in
    List.iter (Replacement.insert p) blocks;
    let rec drain acc =
      match Replacement.victim p with
      | Some v -> drain (v.Block.key :: acc)
      | None -> List.rev acc
    in
    drain []
  in
  Alcotest.(check (list key_t)) "same seed same order" (run 3) (run 3)

let test_replacement_slru_promotes () =
  let p = Replacement.slru ~protected_capacity:2 in
  let b1 = mk_block 1 1 and b2 = mk_block 1 2 and b3 = mk_block 1 3 in
  List.iter (Replacement.insert p) [ b1; b2; b3 ];
  (* b1 promoted to protected; victims come from probation first *)
  Replacement.access p b1;
  (match Replacement.victim p with
  | Some v ->
    if Block.Key.equal v.Block.key (k 1 1) then
      Alcotest.fail "protected block evicted before probation"
  | None -> Alcotest.fail "victim expected");
  Alcotest.(check int) "two left" 2 (Replacement.count p)

let test_replacement_lru_k_prefers_single_access () =
  let p = Replacement.lru_k ~k:2 in
  let once = mk_block 1 1 and twice = mk_block 1 2 in
  once.Block.last_access <- 1.;
  Replacement.insert p once;
  twice.Block.last_access <- 2.;
  Replacement.insert p twice;
  twice.Block.last_access <- 3.;
  Replacement.access p twice;
  (* [once] has no 2nd reference: preferred victim *)
  match Replacement.victim p with
  | Some v -> Alcotest.(check key_t) "once-accessed evicted" (k 1 1) v.Block.key
  | None -> Alcotest.fail "victim expected"

(* The ring-buffer history must pick exactly the victims the original
   list-based LRU-K picked: replay a randomized workload against a
   reference model with the same swap-remove pool order and a naive
   k-history list, and compare every eviction. *)
let test_replacement_lru_k_ring_matches_reference () =
  let k_hist = 2 in
  let p = Replacement.lru_k ~k:k_hist in
  (* reference: insertion array with swap-remove + list history *)
  let ref_pool = ref [||] and ref_len = ref 0 in
  let ref_hist : (Block.Key.t, float list) Hashtbl.t = Hashtbl.create 64 in
  let ref_insert b =
    let arr = !ref_pool in
    let arr =
      if !ref_len = Array.length arr then begin
        let grown = Array.make (Stdlib.max 16 (2 * !ref_len)) b in
        Array.blit arr 0 grown 0 !ref_len;
        grown
      end
      else arr
    in
    arr.(!ref_len) <- b;
    incr ref_len;
    ref_pool := arr
  in
  let ref_note (b : Block.t) =
    let past =
      match Hashtbl.find_opt ref_hist b.Block.key with Some h -> h | None -> []
    in
    let h =
      b.Block.last_access
      :: (if List.length past >= k_hist then
            List.filteri (fun i _ -> i < k_hist - 1) past
          else past)
    in
    Hashtbl.replace ref_hist b.Block.key h
  in
  let ref_kth_age (b : Block.t) =
    match Hashtbl.find_opt ref_hist b.Block.key with
    | Some h when List.length h >= k_hist -> List.nth h (k_hist - 1)
    | Some _ | None -> neg_infinity
  in
  let ref_victim () =
    let best = ref None in
    for i = 0 to !ref_len - 1 do
      let b = !ref_pool.(i) in
      match !best with
      | Some (bb, _) when ref_kth_age bb <= ref_kth_age b -> ()
      | Some _ | None -> best := Some (b, i)
    done;
    match !best with
    | Some (b, i) ->
      !ref_pool.(i) <- !ref_pool.(!ref_len - 1);
      decr ref_len;
      Hashtbl.remove ref_hist b.Block.key;
      Some b
    | None -> None
  in
  let prng = ref 42 in
  let rand n =
    prng := (!prng * 1103515245) + 12345;
    abs !prng mod n
  in
  let live : Block.t list ref = ref [] in
  let clock = ref 0. in
  for step = 0 to 499 do
    clock := !clock +. 1.;
    match rand 3 with
    | 0 ->
      let b = mk_block 1 step in
      b.Block.last_access <- !clock;
      Replacement.insert p b;
      ref_insert b;
      ref_note b;
      live := b :: !live
    | 1 when !live <> [] ->
      let b = List.nth !live (rand (List.length !live)) in
      b.Block.last_access <- !clock;
      Replacement.access p b;
      ref_note b
    | _ when !live <> [] -> (
      let v = Replacement.victim p in
      let rv = ref_victim () in
      match (v, rv) with
      | Some v, Some rv ->
        Alcotest.(check key_t)
          (Printf.sprintf "victim parity at step %d" step)
          rv.Block.key v.Block.key;
        live := List.filter (fun b -> not (b == v)) !live
      | None, None -> ()
      | _ -> Alcotest.fail "one model had a victim, the other did not")
    | _ -> ()
  done

let test_replacement_by_name () =
  List.iter
    (fun n -> ignore (Replacement.by_name n))
    Replacement.known_policies;
  try
    ignore (Replacement.by_name "clock-pro");
    Alcotest.fail "unknown policy must raise"
  with Invalid_argument _ -> ()

(* Packed key representation: pack/unpack round-trips across the whole
   legal range, and the smart constructor rejects out-of-range input. *)

let test_key_roundtrip_boundaries () =
  let cases =
    [
      (0, 0);
      (0, Block.Key.max_index);
      (Block.Key.max_ino, 0);
      (Block.Key.max_ino, Block.Key.max_index);
      (1, 1);
      (12345, 678);
    ]
  in
  List.iter
    (fun (ino, idx) ->
      let key = k ino idx in
      Alcotest.(check int) "ino round-trips" ino (Block.Key.ino key);
      Alcotest.(check int) "index round-trips" idx (Block.Key.index key))
    cases

let test_key_rejects_out_of_range () =
  let expect_invalid name f =
    try
      ignore (f ());
      Alcotest.failf "%s must raise Invalid_argument" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "negative ino" (fun () -> k (-1) 0);
  expect_invalid "negative index" (fun () -> k 0 (-1));
  expect_invalid "ino overflow" (fun () -> k (Block.Key.max_ino + 1) 0);
  expect_invalid "index overflow" (fun () -> k 0 (Block.Key.max_index + 1))

let prop_key_roundtrip =
  QCheck.Test.make ~name:"key pack/unpack round-trips" ~count:500
    QCheck.(
      pair (int_range 0 Block.Key.max_ino) (int_range 0 Block.Key.max_index))
    (fun (ino, idx) ->
      let key = k ino idx in
      Block.Key.ino key = ino && Block.Key.index key = idx)

let prop_key_injective =
  QCheck.Test.make ~name:"distinct (ino,index) pack to distinct keys"
    ~count:500
    QCheck.(
      pair
        (pair (int_range 0 1_000_000) (int_range 0 Block.Key.max_index))
        (pair (int_range 0 1_000_000) (int_range 0 Block.Key.max_index)))
    (fun ((a_ino, a_idx), (b_ino, b_idx)) ->
      let ka = k a_ino a_idx and kb = k b_ino b_idx in
      Block.Key.equal ka kb = (a_ino = b_ino && a_idx = b_idx))

(* Property: the cache never exceeds its configured frames, and every
   operation sequence leaves hit+miss accounting consistent. *)
let prop_cache_capacity_respected =
  QCheck.Test.make ~name:"cache never exceeds volatile+nvram capacity"
    ~count:60
    QCheck.(
      list_of_size Gen.(int_range 1 120)
        (pair (int_range 0 5) (pair (int_range 0 9) bool)))
    (fun ops ->
      let s = vsched () in
      let ok = ref true in
      ignore
        (Sched.spawn s (fun () ->
             let _, wb = make_sink s in
             let c = Cache.create ~writeback:wb s (demand_config ~nvram:2 4) in
             List.iter
               (fun (ino, (idx, is_write)) ->
                 if is_write then Cache.write c (k ino idx) (Data.sim 16)
                 else ignore (Cache.read c (k ino idx) ~fill:(fill_const 16));
                 if Cache.block_count c > 4 + 2 then ok := false)
               ops));
      Sched.run s;
      !ok)

let prop_sync_always_cleans =
  QCheck.Test.make ~name:"sync leaves no dirty blocks" ~count:60
    QCheck.(
      list_of_size Gen.(int_range 1 60)
        (pair (int_range 0 3) (int_range 0 6)))
    (fun writes ->
      let s = vsched () in
      let clean = ref false in
      ignore
        (Sched.spawn s (fun () ->
             let _, wb = make_sink s in
             let c = Cache.create ~writeback:wb s (demand_config 16) in
             List.iter
               (fun (ino, idx) -> Cache.write c (k ino idx) (Data.sim 16))
               writes;
             Cache.sync c;
             clean := Cache.dirty_count c = 0));
      Sched.run s;
      !clean)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_key_roundtrip;
      prop_key_injective;
      prop_cache_capacity_respected;
      prop_sync_always_cleans;
    ]

let suite =
  [
    Alcotest.test_case "read miss then hit" `Quick test_read_miss_then_hit;
    Alcotest.test_case "write then read back" `Quick test_write_then_read_back;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "dirty never silently dropped" `Quick
      test_dirty_blocks_never_evicted_silently;
    Alcotest.test_case "demand flush whole file" `Quick
      test_demand_flush_whole_file;
    Alcotest.test_case "demand flush single block" `Quick
      test_demand_flush_single_block;
    Alcotest.test_case "overwrite absorption" `Quick test_overwrite_absorption;
    Alcotest.test_case "delete absorbs writes" `Quick test_delete_absorbs_writes;
    Alcotest.test_case "truncate drops tail" `Quick test_truncate_drops_tail;
    Alcotest.test_case "periodic update flushes old dirty" `Quick
      test_periodic_update_flushes_old_dirty;
    Alcotest.test_case "ups keeps dirty indefinitely" `Quick
      test_ups_keeps_dirty_indefinitely;
    Alcotest.test_case "nvram capacity stalls writer" `Quick
      test_nvram_capacity_stalls_writer;
    Alcotest.test_case "nvram whole-file beats partial" `Quick
      test_nvram_whole_file_leaves_more_room;
    Alcotest.test_case "concurrent writes same clean block (nvram)" `Quick
      test_concurrent_writes_same_clean_block_nvram;
    Alcotest.test_case "sync leaves cache clean" `Quick
      test_sync_leaves_cache_clean;
    Alcotest.test_case "flush_file scoped" `Quick test_flush_file_only_that_file;
    Alcotest.test_case "write during flush re-dirties" `Quick
      test_write_during_flush_keeps_block_dirty;
    Alcotest.test_case "concurrent misses share fill" `Quick
      test_concurrent_misses_share_fill;
    Alcotest.test_case "sync flush delays allocator" `Quick
      test_sync_flush_delays_allocator;
    Alcotest.test_case "mem copy rate charges time" `Quick
      test_mem_copy_rate_charges_time;
    Alcotest.test_case "stats recorded" `Quick test_stats_recorded;
    Alcotest.test_case "key round-trips at boundaries" `Quick
      test_key_roundtrip_boundaries;
    Alcotest.test_case "key rejects out-of-range" `Quick
      test_key_rejects_out_of_range;
    Alcotest.test_case "replacement lru basic" `Quick test_replacement_lru_basic;
    Alcotest.test_case "replacement skips pinned" `Quick
      test_replacement_skips_pinned;
    Alcotest.test_case "replacement lfu" `Quick test_replacement_lfu_prefers_cold;
    Alcotest.test_case "replacement random deterministic" `Quick
      test_replacement_random_deterministic;
    Alcotest.test_case "replacement slru promotes" `Quick
      test_replacement_slru_promotes;
    Alcotest.test_case "replacement lru-k" `Quick
      test_replacement_lru_k_prefers_single_access;
    Alcotest.test_case "replacement lru-k ring matches reference" `Quick
      test_replacement_lru_k_ring_matches_reference;
    Alcotest.test_case "single-block flush clusters when coalescing" `Quick
      test_demand_flush_single_block_clusters_when_coalescing;
    Alcotest.test_case "cluster respects max extent" `Quick
      test_cluster_respects_max_extent;
    Alcotest.test_case "replacement by name" `Quick test_replacement_by_name;
  ]
  @ qsuite
