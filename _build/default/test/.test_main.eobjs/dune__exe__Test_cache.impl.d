test/test_cache.ml: Alcotest Block Cache Capfs_cache Capfs_disk Capfs_sched Capfs_stats Gen List QCheck QCheck_alcotest Replacement
