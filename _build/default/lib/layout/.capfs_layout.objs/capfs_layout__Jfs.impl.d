lib/layout/jfs.ml: Bytes Capfs_disk Capfs_sched Capfs_stats Char Codec Hashtbl Inode Layout List Stdlib String
