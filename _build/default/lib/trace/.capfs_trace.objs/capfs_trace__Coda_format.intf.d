lib/trace/coda_format.mli: Record
