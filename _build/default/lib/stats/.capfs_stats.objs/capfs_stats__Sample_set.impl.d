lib/stats/sample_set.ml: Array List Prng
