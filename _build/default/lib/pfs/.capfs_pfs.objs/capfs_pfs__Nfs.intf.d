lib/pfs/nfs.mli: Capfs Capfs_disk Capfs_layout Format
