(** Segmented log-structured file system layout (Rosenblum & Ousterhout,
    Seltzer et al.) — the layout the paper ran on all its file systems.

    The disk is divided into a superblock, two alternating checkpoint
    regions and an array of fixed-size segments. All updates — data
    blocks, indirect blocks, inodes — are appended to the current
    segment buffer; full segments are written to disk in one large
    sequential I/O. An in-memory inode map (the IFILE's job) tracks each
    inode's latest on-disk address and is persisted by checkpoints; a
    per-segment usage table drives the cleaner.

    {b Cleaning.} When free segments fall below [min_free_segments] the
    cleaner reclaims segments until [target_free_segments] are free,
    picking victims greedily (least live data) or by Rosenblum's
    cost-benefit ratio, and re-appending live blocks to the log head.
    The log cleaner "can be replaced and is plugged into the LFS
    component when the system starts up".

    {b Recovery.} [mount] reads the newer valid checkpoint and then
    rolls forward: segment summary blocks with a sequence number newer
    than the checkpoint re-establish inode-map entries written after it.

    {b Durability note.} [write_blocks] returns once the blocks sit in
    the open segment buffer (classic LFS behaviour); [sync] seals the
    partial segment and writes a checkpoint. *)

type cleaner_policy = Greedy | Cost_benefit

type config = {
  seg_blocks : int;          (** blocks per segment, incl. the summary *)
  checkpoint_blocks : int;   (** size of each checkpoint region *)
  cleaner : cleaner_policy;
  min_free_segments : int;   (** cleaning trigger *)
  target_free_segments : int;
  first_ino : int;           (** first inode number to mint (default 1) *)
  ino_stride : int;
      (** mint inos [first_ino, first_ino + stride, …] so several
          volumes behind one server share the ino space disjointly *)
}

(** 128-block (512 KB) segments, cost-benefit cleaning, ino stride 1. *)
val default_config : config

(** [format sched driver ~block_bytes ~config] writes a fresh, empty
    file system: superblock, initial checkpoint, all segments free.
    Raises {!Capfs_core.Errno.Error} if the disk fails underneath. *)
val format :
  ?config:config ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  block_bytes:int ->
  unit

(** [mount sched driver ~block_bytes] reads the superblock and newer
    checkpoint, rolls the log forward, and returns the layout interface.
    Raises [Codec.Corrupt] on an invalid image and
    {!Capfs_core.Errno.Error} on I/O failure. The [config] cleaning
    parameters override the defaults (the on-disk geometry always comes
    from the superblock). *)
val mount :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?config:config ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  Layout.t

(** What {!recover} did and found. *)
type recovery_report = {
  r_checkpoint_seq : int;    (** sequence of the checkpoint restored from *)
  r_rolled_segments : int;   (** log segments newer than that checkpoint *)
  r_recovered_inodes : int;  (** inode-map entries live after recovery *)
  r_fsck_errors : string list;
      (** structural inconsistencies (unloadable inodes, out-of-volume
          addresses); empty on a clean recovery *)
}

(** [recover sched driver] is the crash-recovery entry point: {!mount}
    (newer valid checkpoint + roll-forward over the segment summaries)
    followed by a structural consistency sweep of the recovered inode
    map. Returns the mounted layout and a report; [Error EIO] when no
    valid checkpoint survives, [Error e] for driver failures during
    recovery. Emits a [Recovery] trace event when tracing is on. *)
val recover :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?config:config ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  (Layout.t * recovery_report, Capfs_core.Errno.t) result

(** [format_and_mount] is the common test/simulator path: format a fresh
    image and mount it without re-reading metadata from disk (so it also
    works on simulated disks that store no real bytes). *)
val format_and_mount :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?config:config ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  block_bytes:int ->
  Layout.t
