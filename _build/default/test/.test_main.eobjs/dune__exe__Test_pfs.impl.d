test/test_pfs.ml: Alcotest Capfs Capfs_disk Capfs_layout Capfs_pfs Capfs_sched Filename Fun List Printf String Sys Unix
