module Sched = Capfs_sched.Sched
module Mailbox = Capfs_sched.Mailbox
module Data = Capfs_disk.Data
module Stats = Capfs_stats
module Counter = Capfs_stats.Counter
module Tracer = Capfs_obs.Tracer
module Ev = Capfs_obs.Event
module Ktbl = Hashtbl.Make (Block.Key)

let src = Logs.Src.create "capfs.cache" ~doc:"file-system block cache"

module Log = (val Logs.src_log src : Logs.LOG)

type flush_trigger =
  | Demand
  | Periodic of { max_age : float; scan_interval : float }

type flush_scope = [ `Whole_file | `Single_block ]

type config = {
  block_bytes : int;
  capacity_blocks : int;
  nvram_blocks : int;
  trigger : flush_trigger;
  scope : flush_scope;
  async_flush : bool;
  mem_copy_rate : float;
  coalesce : bool;
  flush_window : int;
  max_extent_blocks : int;
}

let default_config ~capacity_blocks =
  {
    block_bytes = 4096;
    capacity_blocks;
    nvram_blocks = 0;
    trigger = Periodic { max_age = 30.; scan_interval = 5. };
    scope = `Whole_file;
    async_flush = true;
    mem_copy_rate = 0.;
    coalesce = false;
    flush_window = 4;
    max_extent_blocks = 64;
  }

(* A flush job: blocks with the version and payload each had when
   snapshotted. The payload snapshot is retained ([Data.retain]) so an
   arena cell stays live while the flusher holds it, even if the block
   is re-dirtied or invalidated in flight; it is released exactly once
   in [complete_flushed]. *)
type flush_job = {
  job_blocks : Block.t array;
  job_versions : int array;
  job_data : Data.t array;
}

(* Stat handles, resolved once at [create] so the hot paths never
   concatenate or hash a stat name (see {!Stats.Counter}). *)
type counters = {
  hits : Counter.t;
  misses : Counter.t;
  evictions : Counter.t;
  flushed_blocks : Counter.t;
  absorbed_writes : Counter.t;
  overwrites : Counter.t;
  read_stall : Counter.t;
  write_stall : Counter.t;
  dirty_blocks : Counter.t;
  nvram_used : Counter.t;
  blit_count : Counter.t;
  copied_bytes : Counter.t;
}

type t = {
  sched : Sched.t;
  cfg : config;
  cname : string;
  c : counters;
  arena : Capfs_disk.Arena.t option;
  (* [copy_seconds] of one block at [mem_copy_rate], fixed at create so
     the hot paths never redo the division (or box its result) *)
  block_copy_s : float;
  writeback : (int * int * Data.t) list -> unit;
  policy : Replacement.t;
  table : Block.t Ktbl.t;
  by_ino : (int, (int, Block.t) Hashtbl.t) Hashtbl.t;
  dirty : Block.t Dlist.t; (* state Dirty only; front = oldest *)
  dirty_nodes : Block.t Dlist.node Ktbl.t;
  filling : Sched.event Ktbl.t; (* in-flight read fills *)
  mutable volatile_used : int;
  mutable nvram_count : int;
  mutable flushing_count : int;
  mutable inflight_extents : int; (* extent writebacks in the window *)
  space_ev : Sched.event;
  extent_done_ev : Sched.event;
  flush_q : flush_job Mailbox.t;
}

let stat_names =
  [
    "hits"; "misses"; "evictions"; "flushed_blocks"; "absorbed_writes";
    "overwrites"; "read_stall"; "write_stall"; "dirty_blocks"; "nvram_used";
    "blit_count"; "copied_bytes";
  ]

let null_counters =
  {
    hits = Counter.null;
    misses = Counter.null;
    evictions = Counter.null;
    flushed_blocks = Counter.null;
    absorbed_writes = Counter.null;
    overwrites = Counter.null;
    read_stall = Counter.null;
    write_stall = Counter.null;
    dirty_blocks = Counter.null;
    nvram_used = Counter.null;
    blit_count = Counter.null;
    copied_bytes = Counter.null;
  }

let resolve_counters r name =
  let c s = Stats.Registry.counter r (name ^ "." ^ s) in
  {
    hits = c "hits";
    misses = c "misses";
    evictions = c "evictions";
    flushed_blocks = c "flushed_blocks";
    absorbed_writes = c "absorbed_writes";
    overwrites = c "overwrites";
    read_stall = c "read_stall";
    write_stall = c "write_stall";
    dirty_blocks = c "dirty_blocks";
    nvram_used = c "nvram_used";
    blit_count = c "blit_count";
    copied_bytes = c "copied_bytes";
  }

let config t = t.cfg
let now t = Sched.now t.sched
let tracer t = Sched.tracer t.sched

let trace_evict t (victim : Block.t) =
  let tr = tracer t in
  if Tracer.enabled tr then
    Tracer.emit tr ~time:(now t)
      (Ev.Cache_evict
         { cache = t.cname; ino = Block.ino victim; index = Block.index victim })

let find t key = Ktbl.find_opt t.table key

let copy_delay t =
  if t.cfg.mem_copy_rate > 0. then Sched.sleep t.sched t.block_copy_s

(* Take ownership of an incoming payload. With an arena, real heap
   bytes are copied into a slab cell — the one memcpy of the write
   path, the same copy the simulator already charges as [copy_delay] —
   and slab slices arriving from elsewhere (e.g. a layout read served
   from the LFS append buffer) are retained so the cache co-owns the
   cell. Simulated payloads carry no bytes and pass through. *)
let adopt t data =
  match t.arena with
  | None -> data
  | Some a -> (
    match data with
    | Data.Real _ | Data.Gather _ ->
      Counter.incr t.c.blit_count;
      Counter.record t.c.copied_bytes (float_of_int (Data.length data));
      Capfs_disk.Arena.copy_in a data
    | Data.Slice _ ->
      Data.retain data;
      data
    | Data.Sim _ -> data)

(* The cache owns one reference to every payload it stores; drop it
   when the payload leaves the table (eviction, invalidation,
   overwrite). A no-op for heap and simulated payloads. *)
let drop_payload (b : Block.t) = Data.release b.Block.data

let touch t b =
  b.Block.last_access <- now t;
  b.Block.access_count <- b.Block.access_count + 1

(* table / by_ino bookkeeping *)

let table_add t b =
  Ktbl.replace t.table b.Block.key b;
  let ino = Block.ino b in
  let file_blocks =
    match Hashtbl.find_opt t.by_ino ino with
    | Some fb -> fb
    | None ->
      let fb = Hashtbl.create 8 in
      Hashtbl.replace t.by_ino ino fb;
      fb
  in
  Hashtbl.replace file_blocks (Block.index b) b

let table_remove t b =
  Ktbl.remove t.table b.Block.key;
  match Hashtbl.find_opt t.by_ino (Block.ino b) with
  | Some fb ->
    Hashtbl.remove fb (Block.index b);
    if Hashtbl.length fb = 0 then Hashtbl.remove t.by_ino (Block.ino b)
  | None -> ()

let blocks_of_ino t ino =
  match Hashtbl.find_opt t.by_ino ino with
  | Some fb -> Hashtbl.fold (fun _ b acc -> b :: acc) fb []
  | None -> []

(* The whole-file flush path: every Dirty block of [ino], sorted by
   index, as a fresh array — sorted in place rather than through
   [List.sort]'s merge allocations. *)
let dirty_blocks_of_ino t ino =
  match Hashtbl.find_opt t.by_ino ino with
  | None -> [||]
  | Some fb ->
    let dirty =
      Hashtbl.fold
        (fun _ b acc -> if b.Block.state = Block.Dirty then b :: acc else acc)
        fb []
    in
    let arr = Array.of_list dirty in
    Array.sort (fun a b -> compare (Block.index a) (Block.index b)) arr;
    arr

(* dirty-list bookkeeping: the list holds blocks in state Dirty only,
   ordered by the time they became dirty (front = oldest). *)

let dirty_push t b =
  Ktbl.replace t.dirty_nodes b.Block.key (Dlist.push_back t.dirty b)

let dirty_remove t b =
  match Ktbl.find_opt t.dirty_nodes b.Block.key with
  | Some n ->
    Dlist.remove t.dirty n;
    Ktbl.remove t.dirty_nodes b.Block.key
  | None -> ()

let release_frame t b =
  if b.Block.in_nvram then begin
    b.Block.in_nvram <- false;
    t.nvram_count <- t.nvram_count - 1
  end
  else t.volatile_used <- t.volatile_used - 1

let space_freed t = Sched.broadcast t.sched t.space_ev

(* {2 Flushing} *)

let snapshot_for_flush t (blocks : Block.t array) =
  let n =
    Array.fold_left
      (fun acc b -> if b.Block.state = Block.Dirty then acc + 1 else acc)
      0 blocks
  in
  if n = 0 then None
  else begin
    let job_blocks = Array.make n blocks.(0) in
    let job_versions = Array.make n 0 in
    let job_data = Array.make n (Data.sim 0) in
    let j = ref 0 in
    Array.iter
      (fun b ->
        if b.Block.state = Block.Dirty then begin
          b.Block.state <- Block.Flushing;
          dirty_remove t b;
          t.flushing_count <- t.flushing_count + 1;
          job_blocks.(!j) <- b;
          job_versions.(!j) <- b.Block.version;
          job_data.(!j) <- b.Block.data;
          Data.retain b.Block.data;
          incr j
        end)
      blocks;
    Some { job_blocks; job_versions; job_data }
  end

(* Re-house a block that just came clean out of NVRAM: it needs a
   volatile frame, possibly evicting a clean victim; with no frame
   obtainable the block is simply dropped (it is clean, that is safe). *)
let rehouse_from_nvram t b =
  if t.volatile_used < t.cfg.capacity_blocks then begin
    t.volatile_used <- t.volatile_used + 1;
    Replacement.insert t.policy b
  end
  else
    match Replacement.victim t.policy with
    | Some victim ->
      table_remove t victim;
      drop_payload victim;
      Counter.incr t.c.evictions;
      trace_evict t victim;
      (* victim frees a frame; [b] takes it: volatile_used unchanged *)
      Replacement.insert t.policy b
    | None ->
      table_remove t b;
      drop_payload b

(* Completion bookkeeping for one written-back block: release the frame
   of a zombie, otherwise come clean — unless it was re-dirtied while in
   flight (version moved on), in which case it is back on the dirty list
   and stays there. *)
let complete_flushed t b version snap =
  Data.release snap;
  t.flushing_count <- t.flushing_count - 1;
  Counter.incr t.c.flushed_blocks;
  if b.Block.zombie then release_frame t b
  else if b.Block.state = Block.Flushing && b.Block.version = version then begin
    b.Block.state <- Block.Clean;
    if b.Block.in_nvram then begin
      b.Block.in_nvram <- false;
      t.nvram_count <- t.nvram_count - 1;
      rehouse_from_nvram t b
    end
    else Replacement.insert t.policy b
  end

(* Write back in bounded chunks, releasing frames and waking waiters
   after each — the §5.2 lesson: a thread short of one frame must not
   sit through the write-back of a whole large file. *)
let flush_chunk_blocks = 8

let do_writeback t (job : flush_job) =
  let n = Array.length job.job_blocks in
  if n = 0 then space_freed t
  else begin
    let pos = ref 0 in
    while !pos < n do
      let len = min flush_chunk_blocks (n - !pos) in
      let payload = ref [] in
      for i = !pos + len - 1 downto !pos do
        let b = job.job_blocks.(i) in
        payload := (Block.ino b, Block.index b, b.Block.data) :: !payload
      done;
      let tr = tracer t in
      if Tracer.enabled tr then
        Tracer.emit tr ~time:(now t)
          (Ev.Cache_flush { cache = t.cname; blocks = len });
      t.writeback !payload;
      for i = !pos to !pos + len - 1 do
        complete_flushed t job.job_blocks.(i) job.job_versions.(i)
          job.job_data.(i)
      done;
      space_freed t;
      pos := !pos + len
    done
  end

(* {2 Clustered write-back (coalesce = true)}

   The flush set is sorted by (ino, index) and cut into extents —
   maximal runs of one file's consecutive blocks, capped at
   [max_extent_blocks]. Each extent travels as a single vectored
   [writeback] call (one [write_blocks] batch, so the layout can turn
   it into one scatter-gather disk request), and up to [flush_window]
   extents are in flight at once: write-behind pipelining through a
   bounded window. The call blocks until the whole job is stable, so
   the synchronous flush paths keep their semantics. *)
let do_writeback_clustered t (job : flush_job) =
  let n = Array.length job.job_blocks in
  if n = 0 then space_freed t
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun i j ->
        let a = job.job_blocks.(i) and b = job.job_blocks.(j) in
        let c = compare (Block.ino a) (Block.ino b) in
        if c <> 0 then c
        else
          let c = compare (Block.index a) (Block.index b) in
          if c <> 0 then c
          else compare job.job_versions.(i) job.job_versions.(j))
      order;
    (* extent boundaries: file change, index gap or duplicate, cap *)
    let extents = ref [] and start = ref 0 in
    for k = 1 to n do
      let cut =
        k = n
        || k - !start >= t.cfg.max_extent_blocks
        ||
        let prev = job.job_blocks.(order.(k - 1))
        and cur = job.job_blocks.(order.(k)) in
        Block.ino cur <> Block.ino prev
        || Block.index cur <> Block.index prev + 1
      in
      if cut then begin
        extents := (!start, k - !start) :: !extents;
        start := k
      end
    done;
    let extents = List.rev !extents in
    let remaining = ref (List.length extents) in
    List.iter
      (fun (off, len) ->
        while t.inflight_extents >= t.cfg.flush_window do
          Sched.await t.sched t.extent_done_ev
        done;
        t.inflight_extents <- t.inflight_extents + 1;
        ignore
          (Sched.spawn t.sched ~name:(t.cname ^ ".extent") (fun () ->
               let payload = ref [] in
               for k = off + len - 1 downto off do
                 let b = job.job_blocks.(order.(k)) in
                 payload := (Block.ino b, Block.index b, b.Block.data) :: !payload
               done;
               let tr = tracer t in
               if Tracer.enabled tr then
                 Tracer.emit tr ~time:(now t)
                   (Ev.Cache_flush { cache = t.cname; blocks = len });
               t.writeback !payload;
               for k = off to off + len - 1 do
                 complete_flushed t job.job_blocks.(order.(k))
                   job.job_versions.(order.(k))
                   job.job_data.(order.(k))
               done;
               space_freed t;
               t.inflight_extents <- t.inflight_extents - 1;
               decr remaining;
               Sched.broadcast t.sched t.extent_done_ev)))
      extents;
    while !remaining > 0 do
      Sched.await t.sched t.extent_done_ev
    done
  end

let do_writeback t job =
  if t.cfg.coalesce then do_writeback_clustered t job else do_writeback t job

let flush_blocks t blocks =
  match snapshot_for_flush t blocks with
  | None -> ()
  | Some job ->
    if t.cfg.async_flush then Mailbox.send t.flush_q job else do_writeback t job

(* With coalescing on, a single-block flush drags along the oldest
   block's file-contiguous dirty neighbours (up to [max_extent_blocks]):
   they would each force their own demand flush moments later, and as
   one extent they cost one disk request and one metadata update. *)
let cluster_around_oldest t (oldest : Block.t) =
  match Hashtbl.find_opt t.by_ino (Block.ino oldest) with
  | None -> [| oldest |]
  | Some fb ->
    let dirty_at i =
      match Hashtbl.find_opt fb i with
      | Some b when b.Block.state = Block.Dirty -> Some b
      | _ -> None
    in
    let idx = Block.index oldest in
    let cap = t.cfg.max_extent_blocks in
    let lo = ref idx and hi = ref idx and count = ref 1 in
    let more = ref true in
    while !more && !count < cap do
      match dirty_at (!lo - 1) with
      | Some _ ->
        decr lo;
        incr count
      | None -> more := false
    done;
    more := true;
    while !more && !count < cap do
      match dirty_at (!hi + 1) with
      | Some _ ->
        incr hi;
        incr count
      | None -> more := false
    done;
    Array.init (!hi - !lo + 1) (fun k -> Option.get (dirty_at (!lo + k)))

(* Flush "through the oldest dirty block": the whole owning file or just
   the block itself, per the configured scope. *)
let flush_oldest t =
  match Dlist.front t.dirty with
  | None -> false
  | Some oldest ->
    let batch =
      match t.cfg.scope with
      | `Single_block ->
        if t.cfg.coalesce then cluster_around_oldest t oldest else [| oldest |]
      | `Whole_file -> dirty_blocks_of_ino t (Block.ino oldest)
    in
    flush_blocks t batch;
    true

(* Nudge a flush, then block until space may be available. A synchronous
   flush frees frames before returning, so re-check [satisfied] instead of
   awaiting a broadcast that already happened. *)
let wait_for_space t ~satisfied =
  (* Initiate a drain only when none is outstanding: every waiter
     kicking off its own flush floods the flusher with duplicate work. *)
  let progressed =
    if t.flushing_count = 0 then flush_oldest t else true
  in
  if (not progressed) && t.flushing_count = 0 then
    Log.warn (fun m ->
        m "%s: stalled with nothing to flush (all frames pinned?)" t.cname);
  if not (satisfied ()) then Sched.await t.sched t.space_ev

(* {2 Frame allocation} *)

let rec reserve_volatile t ~stall =
  if t.volatile_used < t.cfg.capacity_blocks then
    t.volatile_used <- t.volatile_used + 1
  else
    match Replacement.victim t.policy with
    | Some victim ->
      table_remove t victim;
      drop_payload victim;
      Counter.incr t.c.evictions;
      trace_evict t victim
    | None ->
      let t0 = now t in
      wait_for_space t ~satisfied:(fun () ->
          t.volatile_used < t.cfg.capacity_blocks
          || Replacement.count t.policy > 0);
      Counter.record stall (now t -. t0);
      reserve_volatile t ~stall

let rec acquire_nvram t =
  if t.nvram_count < t.cfg.nvram_blocks then
    t.nvram_count <- t.nvram_count + 1
  else begin
    let t0 = now t in
    wait_for_space t ~satisfied:(fun () ->
        t.nvram_count < t.cfg.nvram_blocks);
    Counter.record t.c.write_stall (now t -. t0);
    acquire_nvram t
  end

(* {2 Reads} *)

(* the hit path avoids [find]'s option allocation: one table probe,
   no [Some] box, per read *)
let rec read t key ~fill =
  match Ktbl.find t.table key with
  | b ->
    Counter.incr t.c.hits;
    let tr = tracer t in
    if Tracer.enabled tr then
      Tracer.emit tr ~time:(now t)
        (Ev.Cache_hit
           { cache = t.cname; ino = Block.Key.ino key; index = Block.Key.index key });
    if b.Block.state = Block.Clean then Replacement.access t.policy b;
    touch t b;
    copy_delay t;
    b.Block.data
  | exception Not_found -> (
    Counter.incr t.c.misses;
    let tr = tracer t in
    if Tracer.enabled tr then
      Tracer.emit tr ~time:(now t)
        (Ev.Cache_miss
           { cache = t.cname; ino = Block.Key.ino key; index = Block.Key.index key });
    match Ktbl.find_opt t.filling key with
    | Some ev ->
      Sched.await t.sched ev;
      read t key ~fill
    | None ->
      let ev = Sched.new_event ~name:"cache.fill" t.sched in
      Ktbl.replace t.filling key ev;
      reserve_volatile t ~stall:t.c.read_stall;
      let data = fill key in
      Ktbl.remove t.filling key;
      Sched.broadcast t.sched ev;
      (match find t key with
      | Some b ->
        (* a writer created the block while we were reading the stale
           copy from disk: their contents win, our frame is returned *)
        t.volatile_used <- t.volatile_used - 1;
        space_freed t;
        if b.Block.state = Block.Clean then Replacement.access t.policy b;
        touch t b;
        copy_delay t;
        b.Block.data
      | None ->
        let data = adopt t data in
        let b = Block.make ~key ~data ~now:(now t) in
        table_add t b;
        Replacement.insert t.policy b;
        touch t b;
        copy_delay t;
        data))

let peek t key = Option.map (fun b -> b.Block.data) (find t key)

(* {2 Writes} *)

let mark_dirty t b data =
  let old = b.Block.data in
  if old != data then Data.release old;
  b.Block.data <- data;
  b.Block.version <- b.Block.version + 1;
  b.Block.state <- Block.Dirty;
  b.Block.dirtied_at <- now t;
  dirty_push t b;
  touch t b

let rec write_adopted t key data =
  (match Ktbl.find t.table key with
  | b when b.Block.state = Block.Dirty ->
    (* overwrite in memory: one disk write saved *)
    let old = b.Block.data in
    if old != data then Data.release old;
    b.Block.data <- data;
    b.Block.version <- b.Block.version + 1;
    touch t b;
    Counter.incr t.c.overwrites
  | b when b.Block.state = Block.Flushing ->
    (* re-dirty a block whose old contents are being written out *)
    mark_dirty t b data;
    Counter.incr t.c.overwrites
  | b ->
    (* clean block becomes dirty *)
    if t.cfg.nvram_blocks > 0 then begin
      Block.pin b;
      acquire_nvram t;
      Block.unpin b;
      (* During the stall another client may have dirtied this very
         block (hot shared files) or invalidated it: only proceed if it
         is still the same, still-clean block. *)
      let still_ours =
        match find t key with
        | Some cur -> cur == b && b.Block.state = Block.Clean
        | None -> false
      in
      if still_ours then begin
        Replacement.forget t.policy b;
        t.volatile_used <- t.volatile_used - 1;
        space_freed t;
        b.Block.in_nvram <- true;
        mark_dirty t b data
      end
      else begin
        (* invalidated while we stalled: release and retry *)
        t.nvram_count <- t.nvram_count - 1;
        space_freed t;
        write_adopted t key data
      end
    end
    else begin
      Replacement.forget t.policy b;
      mark_dirty t b data
    end
  | exception Not_found ->
    if t.cfg.nvram_blocks > 0 then begin
      acquire_nvram t;
      match find t key with
      | Some _ ->
        (* another writer beat us to the insert *)
        t.nvram_count <- t.nvram_count - 1;
        space_freed t;
        write_adopted t key data
      | None ->
        let b = Block.make ~key ~data ~now:(now t) in
        b.Block.in_nvram <- true;
        table_add t b;
        mark_dirty t b data
    end
    else begin
      reserve_volatile t ~stall:t.c.write_stall;
      match find t key with
      | Some _ ->
        t.volatile_used <- t.volatile_used - 1;
        space_freed t;
        write_adopted t key data
      | None ->
        let b = Block.make ~key ~data ~now:(now t) in
        table_add t b;
        mark_dirty t b data
    end);
  copy_delay t;
  Counter.record t.c.dirty_blocks (float_of_int (Dlist.length t.dirty));
  Counter.record t.c.nvram_used (float_of_int t.nvram_count)

(* Adoption happens once, outside the stall-and-retry recursion: the
   retries reuse the already-owned payload. *)
let write t key data = write_adopted t key (adopt t data)

(* {2 Invalidation} *)

let invalidate_block t b =
  match b.Block.state with
  | Block.Clean ->
    Replacement.forget t.policy b;
    table_remove t b;
    drop_payload b;
    t.volatile_used <- t.volatile_used - 1;
    space_freed t
  | Block.Dirty ->
    dirty_remove t b;
    table_remove t b;
    drop_payload b;
    release_frame t b;
    Counter.incr t.c.absorbed_writes;
    space_freed t
  | Block.Flushing ->
    (* the flusher holds a snapshot (and its own payload reference); it
       releases the frame on completion *)
    b.Block.zombie <- true;
    table_remove t b;
    drop_payload b;
    Counter.incr t.c.absorbed_writes

let invalidate t key =
  match find t key with Some b -> invalidate_block t b | None -> ()

let truncate t ino ~from =
  blocks_of_ino t ino
  |> List.filter (fun b -> Block.index b >= from)
  |> List.iter (invalidate_block t)

let remove_file t ino = List.iter (invalidate_block t) (blocks_of_ino t ino)

(* {2 Synchronous flushing} *)

let file_has_unstable t ino =
  match Hashtbl.find_opt t.by_ino ino with
  | None -> false
  | Some fb -> Hashtbl.fold (fun _ b acc -> acc || Block.is_dirty b) fb false

let flush_file t ino =
  (* Loop: a block re-dirtied while its snapshot was in flight needs
     another round before the file is stable. *)
  while file_has_unstable t ino do
    flush_blocks t (dirty_blocks_of_ino t ino);
    if file_has_unstable t ino then Sched.await t.sched t.space_ev
  done

let sync t =
  while Dlist.length t.dirty > 0 || t.flushing_count > 0 do
    if Dlist.length t.dirty > 0 then
      flush_blocks t (Dlist.to_array t.dirty)
    else Sched.await t.sched t.space_ev
  done

(* {2 Daemons} *)

(* Concatenate queued flush jobs into one, preserving arrival order
   (the clustered write-back re-sorts by (ino, index) anyway). *)
let merge_jobs jobs =
  match jobs with
  | [ j ] -> j
  | _ ->
    {
      job_blocks = Array.concat (List.map (fun j -> j.job_blocks) jobs);
      job_versions = Array.concat (List.map (fun j -> j.job_versions) jobs);
      job_data = Array.concat (List.map (fun j -> j.job_data) jobs);
    }

let flusher_loop t () =
  while true do
    let job = Mailbox.recv t.flush_q in
    if t.cfg.coalesce then begin
      (* batch everything already queued behind it: one flush set, so
         adjacent blocks from separate jobs cluster into one extent *)
      let jobs = ref [ job ] in
      let rec drain () =
        match Mailbox.try_recv t.flush_q with
        | Some j ->
          jobs := j :: !jobs;
          drain ()
        | None -> ()
      in
      drain ();
      do_writeback t (merge_jobs (List.rev !jobs))
    end
    else do_writeback t job
  done

let periodic_loop t ~max_age ~scan_interval () =
  while true do
    Sched.sleep t.sched scan_interval;
    let rec drain () =
      match Dlist.front t.dirty with
      | Some b when now t -. b.Block.dirtied_at >= max_age ->
        ignore (flush_oldest t);
        drain ()
      | Some _ | None -> ()
    in
    drain ()
  done

(* {2 Construction} *)

let create ?registry ?(name = "cache") ?replacement ?arena ~writeback sched cfg
    =
  if cfg.capacity_blocks < 1 then invalid_arg "Cache.create: no capacity";
  if cfg.block_bytes < 1 then invalid_arg "Cache.create: bad block size";
  if cfg.nvram_blocks < 0 then invalid_arg "Cache.create: negative nvram";
  if cfg.flush_window < 1 then invalid_arg "Cache.create: empty flush window";
  if cfg.max_extent_blocks < 1 then
    invalid_arg "Cache.create: empty max extent";
  let c =
    match registry with
    | Some r ->
      List.iter
        (fun s ->
          Stats.Registry.register r (Stats.Stat.scalar (name ^ "." ^ s)))
        stat_names;
      resolve_counters r name
    | None -> null_counters
  in
  let policy =
    match replacement with Some p -> p | None -> Replacement.lru ()
  in
  let t =
    {
      sched;
      cfg;
      cname = name;
      c;
      arena;
      block_copy_s =
        (if cfg.mem_copy_rate > 0. then
           Data.copy_seconds ~rate_bytes_per_sec:cfg.mem_copy_rate
             cfg.block_bytes
         else 0.);
      writeback;
      policy;
      table = Ktbl.create 1024;
      by_ino = Hashtbl.create 256;
      dirty = Dlist.create ();
      dirty_nodes = Ktbl.create 256;
      filling = Ktbl.create 16;
      volatile_used = 0;
      nvram_count = 0;
      flushing_count = 0;
      inflight_extents = 0;
      space_ev = Sched.new_event ~name:(name ^ ".space") sched;
      extent_done_ev = Sched.new_event ~name:(name ^ ".extent_done") sched;
      flush_q = Mailbox.create ~name:(name ^ ".flushq") sched;
    }
  in
  if cfg.async_flush then
    ignore
      (Sched.spawn sched ~name:(name ^ ".flusher") ~daemon:true
         (flusher_loop t));
  (match cfg.trigger with
  | Periodic { max_age; scan_interval } ->
    ignore
      (Sched.spawn sched ~name:(name ^ ".update") ~daemon:true
         (periodic_loop t ~max_age ~scan_interval))
  | Demand -> ());
  t

(* {2 Introspection} *)

let block_count t = Ktbl.length t.table
let dirty_count t = Dlist.length t.dirty + t.flushing_count
let nvram_used t = t.nvram_count
let contains t key = Ktbl.mem t.table key

let keys_of_file t ino =
  List.map (fun b -> b.Block.key) (blocks_of_ino t ino)
