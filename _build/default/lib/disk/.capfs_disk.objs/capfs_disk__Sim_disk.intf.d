lib/disk/sim_disk.mli: Bus Capfs_sched Capfs_stats Disk_model Iorequest
