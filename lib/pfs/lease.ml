(* Per-path grant state for the leased client cache: the Cc_server
   version/holder machine (lib/ccache) re-cut for the wire. Mutex-guarded
   because shard fibres on different domains consult it; operations are
   short and allocation-free on the hot path.

   The server never blocks on a client (no Sprite-style synchronous
   recall): a write-open bumps the version and *pushes* Invalidate
   frames to the other holders, and concurrent write sharing downgrades
   everyone to write-through ([cacheable = false]) until all holders
   close. Lease expiry is enforced client-side — the grant carries the
   duration, the client stops serving local hits when it lapses — so
   server holder state is bounded only by connection lifetime
   ({!drop_client} runs at disconnect). *)

type holder = { h_client : int; mutable h_write : bool }

type fstate = {
  mutable version : int;
  mutable holders : holder list;
  mutable cacheable : bool;
}

type t = {
  lease_s : float;
  files : (string, fstate) Hashtbl.t;
  lock : Mutex.t;
}

type grant_info = {
  gi_version : int;
  gi_cacheable : bool;
  gi_renewal : bool;
  gi_invalidate : int list;
}

let create ~lease_s () =
  if lease_s <= 0. then invalid_arg "Lease.create: lease_s must be positive";
  { lease_s; files = Hashtbl.create 256; lock = Mutex.create () }

let lease_s t = t.lease_s

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let fstate t path =
  match Hashtbl.find_opt t.files path with
  | Some st -> st
  | None ->
    let st = { version = 1; holders = []; cacheable = true } in
    Hashtbl.replace t.files path st;
    st

let held t ~client ~path =
  locked t (fun () ->
      match Hashtbl.find_opt t.files path with
      | None -> None
      | Some st ->
        List.find_map
          (fun h -> if h.h_client = client then Some h.h_write else None)
          st.holders)

let open_grant t ~client ~path ~write =
  locked t (fun () ->
      let st = fstate t path in
      let renewal =
        match List.find_opt (fun h -> h.h_client = client) st.holders with
        | Some h ->
          h.h_write <- write;
          true
        | None ->
          st.holders <- { h_client = client; h_write = write } :: st.holders;
          false
      in
      let others =
        List.filter (fun h -> h.h_client <> client) st.holders
      in
      let invalidate =
        if write then begin
          st.version <- st.version + 1;
          List.map (fun h -> h.h_client) others
        end
        else if List.exists (fun h -> h.h_write) others then
          (* a reader arriving on a delayed-write file: the writer must
             flush and go write-through *)
          List.filter_map
            (fun h -> if h.h_write then Some h.h_client else None)
            others
        else []
      in
      (* concurrent write sharing: a writer plus any other holder *)
      if others <> [] && List.exists (fun h -> h.h_write) st.holders then
        st.cacheable <- false;
      {
        gi_version = st.version;
        gi_cacheable = st.cacheable;
        gi_renewal = renewal;
        gi_invalidate = invalidate;
      })

(* Unlike the simulated Cc_server (which waits for every holder to
   leave), caching may resume as soon as the last writer departs: a
   writer's close commits its dirty blocks in the same Writeback frame,
   so the server copy is current the moment no writer holds the file.
   Surviving readers pick the good news up at their next lease
   renewal. *)
let refresh_cacheable st =
  if not (List.exists (fun h -> h.h_write) st.holders) then
    st.cacheable <- true

let close_ t ~client ~path =
  locked t (fun () ->
      match Hashtbl.find_opt t.files path with
      | None -> ()
      | Some st ->
        st.holders <-
          List.filter (fun h -> h.h_client <> client) st.holders;
        refresh_cacheable st)

let version t ~path =
  locked t (fun () ->
      match Hashtbl.find_opt t.files path with
      | None -> 1
      | Some st -> st.version)

let note_write t ~client ~path =
  locked t (fun () ->
      match Hashtbl.find_opt t.files path with
      | None -> None (* never granted: no cache can hold stale data *)
      | Some st ->
        st.version <- st.version + 1;
        let holders =
          List.filter_map
            (fun h ->
              if h.h_client <> client then Some h.h_client else None)
            st.holders
        in
        Some (st.version, holders))

let drop_client t ~client =
  locked t (fun () ->
      Hashtbl.fold
        (fun path st acc ->
          if List.exists (fun h -> h.h_client = client) st.holders then begin
            st.holders <-
              List.filter (fun h -> h.h_client <> client) st.holders;
            refresh_cacheable st;
            path :: acc
          end
          else acc)
        t.files [])
