lib/stats/registry.ml: Format Hashtbl List Stat String
