(* The leased client cache: Cc_client's hit/miss/invalidate machine
   re-cut onto the PFS wire protocol. See cached_client.mli. *)

module Frame = Capfs_ccache.Netlink.Frame
module Data = Capfs_disk.Data
module Errno = Capfs_core.Errno

let bb = Pfs.block_bytes

(* A Writeback frame carrying more than this many blocks would risk
   the peer's 1 MiB payload cap; flushes chunk at this granularity. *)
let writeback_chunk = 192

type transport = {
  t_send : Frame.t list -> (unit, Errno.t) result;
  t_recv : block:bool -> (Frame.t option, Errno.t) result;
  t_now : unit -> float;
  t_close : unit -> unit;
}

type block = { b_data : Bytes.t; mutable b_dirty : bool }

type handle = {
  h_path : string;
  mutable h_mode : Capfs.Client.open_mode;
  mutable h_version : int;
  mutable h_cacheable : bool;
  mutable h_size : int;
  mutable h_expires : float;
  mutable h_epoch : int;
  h_blocks : (int, block) Hashtbl.t; (* block index -> cached block *)
}

type t = {
  tr : transport;
  client : int;
  handles : (string, handle) Hashtbl.t;
  pending : (int, Frame.t) Hashtbl.t; (* out-of-order replies parked *)
  mutable next_id : int;
  mutable hits : int;
  mutable misses : int;
  mutable invals : int;
  mutable msgs : int;
  mutable sends : int;
  mutable closed : bool;
}

let create ~client transport =
  {
    tr = transport;
    client;
    handles = Hashtbl.create 16;
    pending = Hashtbl.create 16;
    next_id = 1;
    hits = 0;
    misses = 0;
    invals = 0;
    msgs = 0;
    sends = 0;
    closed = false;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- (if id + 1 >= Wire.push_req_id then 1 else id + 1);
  id

let frame_of_request id req =
  let opcode, payload = Wire.encode_request req in
  { Frame.req_id = id; opcode; payload }

let send t frames =
  t.msgs <- t.msgs + List.length frames;
  t.sends <- t.sends + 1;
  t.tr.t_send frames

(* {2 The receive path}

   One loop serves three consumers: replies we are waiting for, replies
   to other in-flight requests (parked in [pending] — the transports
   may interleave), and server pushes under {!Wire.push_req_id}, which
   are acted on the moment they surface so a stale block is never
   served after its invalidation has been read off the wire. *)

let rec wait_reply t id =
  match Hashtbl.find_opt t.pending id with
  | Some f ->
    Hashtbl.remove t.pending id;
    Ok f
  | None -> (
    match t.tr.t_recv ~block:true with
    | Error e -> Error e
    | Ok None -> Error Errno.EIO
    | Ok (Some f) ->
      if f.Frame.req_id = Wire.push_req_id then begin
        handle_push t f;
        wait_reply t id
      end
      else if f.Frame.req_id = id then Ok f
      else begin
        Hashtbl.replace t.pending f.Frame.req_id f;
        wait_reply t id
      end)

and handle_push t f =
  match Wire.decode_push ~opcode:f.Frame.opcode f.Frame.payload with
  | Error _ -> ()
  | Ok (Wire.Invalidate { path; version }) -> invalidate t ~path ~version

and invalidate t ~path ~version =
  t.invals <- t.invals + 1;
  match Hashtbl.find_opt t.handles path with
  | None -> ()
  | Some h ->
    (* the epoch bump tells any in-flight fetch not to insert its
       reply: the caller still gets the data (the read was issued
       before the invalidation), the cache does not keep it *)
    h.h_epoch <- h.h_epoch + 1;
    (* commit our delayed writes before dropping anything, then go
       write-through: concurrent sharing has been detected *)
    ignore (flush_dirty t h ~close:false);
    Hashtbl.reset h.h_blocks;
    h.h_cacheable <- false;
    if version > h.h_version then h.h_version <- version

and rpc t req =
  let id = fresh_id t in
  match send t [ frame_of_request id req ] with
  | Error e -> Error e
  | Ok () -> (
    match wait_reply t id with
    | Error e -> Error e
    | Ok f -> (
      match Wire.decode_reply ~opcode:f.Frame.opcode f.Frame.payload with
      | Error e -> Error e
      | Ok (Wire.Err e) -> Error e
      | Ok r -> Ok r))

and flush_dirty t h ~close =
  let dirty =
    Hashtbl.fold
      (fun idx b acc -> if b.b_dirty then (idx, b) :: acc else acc)
      h.h_blocks []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if dirty = [] && not close then Ok ()
  else begin
    let rec chunks acc = function
      | [] -> List.rev acc
      | l ->
        let rec take n acc = function
          | [] -> (List.rev acc, [])
          | rest when n = 0 -> (List.rev acc, rest)
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let c, rest = take writeback_chunk [] l in
        chunks (c :: acc) rest
    in
    let groups = match chunks [] dirty with [] -> [ [] ] | gs -> gs in
    let last = List.length groups - 1 in
    let rec go i = function
      | [] -> Ok ()
      | g :: rest -> (
        let blocks =
          List.map
            (fun (idx, b) ->
              let off = idx * bb in
              let len = Stdlib.max 0 (Stdlib.min bb (h.h_size - off)) in
              (off, Bytes.sub_string b.b_data 0 len))
            g
        in
        match
          rpc t
            (Wire.Writeback
               {
                 client = t.client;
                 path = h.h_path;
                 size = h.h_size;
                 close = close && i = last;
                 blocks;
               })
        with
        | Error e -> Error e
        | Ok _ ->
          List.iter (fun (_, b) -> b.b_dirty <- false) g;
          go (i + 1) rest)
    in
    go 0 groups
  end

(* Poll for pushed invalidations without blocking — the "check the
   wire before trusting the cache" step in front of every local hit. *)
let rec drain_pushes t =
  match t.tr.t_recv ~block:false with
  | Error _ | Ok None -> ()
  | Ok (Some f) ->
    if f.Frame.req_id = Wire.push_req_id then handle_push t f
    else Hashtbl.replace t.pending f.Frame.req_id f;
    drain_pushes t

(* {2 Grants and leases} *)

let apply_grant t h (g : Wire.grant) =
  if g.version <> h.h_version then begin
    (* someone else wrote since our grant: every cached block is stale *)
    h.h_epoch <- h.h_epoch + 1;
    Hashtbl.reset h.h_blocks
  end;
  h.h_version <- g.version;
  h.h_cacheable <- g.cacheable;
  h.h_size <- g.size;
  h.h_expires <- t.tr.t_now () +. g.lease_s

let renew t h =
  match flush_dirty t h ~close:false with
  | Error e -> Error e
  | Ok () -> (
    match
      rpc t
        (Wire.Open_grant { client = t.client; path = h.h_path; mode = h.h_mode })
    with
    | Ok (Wire.Ok_grant g) ->
      apply_grant t h g;
      Ok ()
    | Ok _ -> Error Errno.EINVAL
    | Error e -> Error e)

(* An expired lease stops local service: flush what we owe, renew.
   Write-through handles renew too — the fresh grant is how they learn
   that the sharing writer has departed and caching may resume. *)
let check_lease t h =
  if t.tr.t_now () >= h.h_expires then renew t h else Ok ()

(* {2 The file interface} *)

let handle t path =
  match Hashtbl.find_opt t.handles path with
  | Some h -> Ok h
  | None -> Error Errno.EBADF

let open_ t path mode =
  drain_pushes t;
  match rpc t (Wire.Open_grant { client = t.client; path; mode }) with
  | Error e -> Error e
  | Ok (Wire.Ok_grant g) ->
    let h =
      match Hashtbl.find_opt t.handles path with
      | Some h ->
        h.h_mode <- mode;
        h
      | None ->
        let h =
          {
            h_path = path;
            h_mode = mode;
            h_version = g.version;
            h_cacheable = g.cacheable;
            h_size = g.size;
            h_expires = 0.;
            h_epoch = 0;
            h_blocks = Hashtbl.create 16;
          }
        in
        Hashtbl.replace t.handles path h;
        h
    in
    apply_grant t h g;
    Ok ()
  | Ok _ -> Error Errno.EINVAL

(* Fetch the named blocks in one batched send — N Read frames, one
   write(2) on the socket transport. Replies are collected in request
   order; each lands in the cache only if no invalidation raced it. *)
let fetch_blocks t h idxs =
  let epoch = h.h_epoch in
  let reqs = List.map (fun idx -> (fresh_id t, idx)) idxs in
  let frames =
    List.map
      (fun (id, idx) ->
        frame_of_request id
          (Wire.Read
             { client = t.client; path = h.h_path; offset = idx * bb; count = bb }))
      reqs
  in
  match send t frames with
  | Error e -> Error e
  | Ok () ->
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | (id, idx) :: rest -> (
        match wait_reply t id with
        | Error e -> Error e
        | Ok f -> (
          match Wire.decode_reply ~opcode:f.Frame.opcode f.Frame.payload with
          | Error e -> Error e
          | Ok (Wire.Err e) -> Error e
          | Ok (Wire.Ok_data d) ->
            let s = Data.to_string d in
            let b = Bytes.make bb '\000' in
            Bytes.blit_string s 0 b 0 (Stdlib.min bb (String.length s));
            if h.h_epoch = epoch && h.h_cacheable then
              Hashtbl.replace h.h_blocks idx { b_data = b; b_dirty = false };
            collect ((idx, b) :: acc) rest
          | Ok _ -> Error Errno.EINVAL))
    in
    collect [] reqs

let read t path ~offset ~count =
  if offset < 0 || count < 0 then Error Errno.EINVAL
  else begin
    drain_pushes t;
    match handle t path with
    | Error e -> Error e
    | Ok h -> (
      match check_lease t h with
      | Error e -> Error e
      | Ok () ->
        if not h.h_cacheable then begin
          t.misses <- t.misses + 1;
          match rpc t (Wire.Read { client = t.client; path; offset; count }) with
          | Ok (Wire.Ok_data d) -> Ok (Data.to_string d)
          | Ok _ -> Error Errno.EINVAL
          | Error e -> Error e
        end
        else begin
          let avail = Stdlib.max 0 (h.h_size - offset) in
          let len = Stdlib.min count avail in
          if len = 0 then Ok ""
          else begin
            let first = offset / bb and last = (offset + len - 1) / bb in
            (* snapshot present blocks before fetching: an invalidation
               racing the fetch may reset the table, but this read was
               issued first and is served from what it saw *)
            let have = ref [] and missing = ref [] in
            for idx = last downto first do
              match Hashtbl.find_opt h.h_blocks idx with
              | Some b -> have := (idx, b.b_data) :: !have
              | None -> missing := idx :: !missing
            done;
            t.hits <- t.hits + List.length !have;
            t.misses <- t.misses + List.length !missing;
            let fetched =
              if !missing = [] then Ok [] else fetch_blocks t h !missing
            in
            match fetched with
            | Error e -> Error e
            | Ok fetched ->
              let out = Bytes.create len in
              List.iter
                (fun (idx, data) ->
                  let lo = Stdlib.max offset (idx * bb) in
                  let hi = Stdlib.min (offset + len) ((idx + 1) * bb) in
                  Bytes.blit data (lo - (idx * bb)) out (lo - offset) (hi - lo))
                (!have @ fetched);
              Ok (Bytes.unsafe_to_string out)
          end
        end)
  end

let write t path ~offset ~data =
  let len = String.length data in
  if offset < 0 then Error Errno.EINVAL
  else begin
    drain_pushes t;
    match handle t path with
    | Error e -> Error e
    | Ok h ->
      if h.h_mode = Capfs.Client.RO then Error Errno.EBADF
      else (
        match check_lease t h with
        | Error e -> Error e
        | Ok () ->
          if len = 0 then Ok ()
          else if not h.h_cacheable then begin
            (* write-through: concurrent write sharing *)
            match
              rpc t (Wire.Write { client = t.client; path; offset; data })
            with
            | Ok _ ->
              if offset + len > h.h_size then h.h_size <- offset + len;
              Ok ()
            | Error e -> Error e
          end
          else begin
            (* delayed write: merge into local blocks, flush at close
               or lease expiry *)
            let first = offset / bb and last = (offset + len - 1) / bb in
            let rec go idx =
              if idx > last then Ok ()
              else begin
                let lo = Stdlib.max offset (idx * bb) in
                let hi = Stdlib.min (offset + len) ((idx + 1) * bb) in
                let at = lo - (idx * bb) in
                let base =
                  match Hashtbl.find_opt h.h_blocks idx with
                  | Some b -> Ok b
                  | None ->
                    if (at = 0 && hi - lo = bb) || idx * bb >= h.h_size then begin
                      (* whole-block overwrite or past EOF: no fetch *)
                      let b = { b_data = Bytes.make bb '\000'; b_dirty = false } in
                      Hashtbl.replace h.h_blocks idx b;
                      Ok b
                    end
                    else (
                      (* partial overwrite of existing data:
                         read-modify-write *)
                      match fetch_blocks t h [ idx ] with
                      | Error e -> Error e
                      | Ok fetched -> (
                        match Hashtbl.find_opt h.h_blocks idx with
                        | Some b -> Ok b
                        | None ->
                          (* invalidated mid-fetch: merge into the
                             fetched copy; it flushes at close *)
                          let b =
                            { b_data = List.assoc idx fetched; b_dirty = false }
                          in
                          Hashtbl.replace h.h_blocks idx b;
                          Ok b))
                in
                match base with
                | Error e -> Error e
                | Ok b ->
                  Bytes.blit_string data (lo - offset) b.b_data at (hi - lo);
                  b.b_dirty <- true;
                  go (idx + 1)
              end
            in
            match go first with
            | Error e -> Error e
            | Ok () ->
              if offset + len > h.h_size then h.h_size <- offset + len;
              Ok ()
          end)
  end

let close_ t path =
  drain_pushes t;
  match handle t path with
  | Error e -> Error e
  | Ok h ->
    let dirty =
      Hashtbl.fold (fun _ b n -> if b.b_dirty then n + 1 else n) h.h_blocks 0
    in
    let r =
      if dirty > 0 then flush_dirty t h ~close:true
      else
        match rpc t (Wire.Close { client = t.client; path }) with
        | Ok _ -> Ok ()
        | Error e -> Error e
    in
    Hashtbl.remove t.handles path;
    r

(* {2 Passthroughs} *)

let unit_rpc t req =
  match rpc t req with
  | Ok Wire.Ok_unit -> Ok ()
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let mkdir t path =
  drain_pushes t;
  unit_rpc t (Wire.Mkdir path)

let delete t path =
  drain_pushes t;
  (match Hashtbl.find_opt t.handles path with
  | Some h ->
    Hashtbl.reset h.h_blocks;
    Hashtbl.remove t.handles path
  | None -> ());
  unit_rpc t (Wire.Delete path)

let stat t path =
  drain_pushes t;
  match rpc t (Wire.Stat path) with
  | Ok (Wire.Ok_stat s) -> Ok s
  | Ok _ -> Error Errno.EINVAL
  | Error e -> Error e

let sync t =
  drain_pushes t;
  unit_rpc t Wire.Sync

let disconnect t =
  if not t.closed then begin
    t.closed <- true;
    let paths = Hashtbl.fold (fun p _ acc -> p :: acc) t.handles [] in
    List.iter (fun p -> ignore (close_ t p)) paths;
    t.tr.t_close ()
  end

(* {2 Counters} *)

let local_hits t = t.hits
let remote_misses t = t.misses
let invalidations t = t.invals
let msgs_sent t = t.msgs
let wire_sends t = t.sends

let cached_blocks t =
  Hashtbl.fold (fun _ h n -> n + Hashtbl.length h.h_blocks) t.handles 0

let dirty_blocks t =
  Hashtbl.fold
    (fun _ h n ->
      n + Hashtbl.fold (fun _ b m -> if b.b_dirty then m + 1 else m) h.h_blocks 0)
    t.handles 0

(* {2 Transports} *)

let socket_transport ?(max_payload = Frame.default_max_payload) fd =
  let sp = Frame.Splitter.create ~max_payload () in
  let inq : Frame.t Queue.t = Queue.create () in
  let rbuf = Bytes.create 65536 in
  let gather = ref (Bytes.create 4096) in
  let ensure n =
    if Bytes.length !gather < n then
      gather := Bytes.create (Stdlib.max n (2 * Bytes.length !gather))
  in
  let readable_now () =
    match Unix.select [ fd ] [] [] 0. with
    | [ _ ], _, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let read_some () =
    match Unix.read fd rbuf 0 (Bytes.length rbuf) with
    | 0 -> Error Errno.EIO (* peer gone mid-conversation *)
    | n ->
      Frame.Splitter.feed sp rbuf 0 n;
      Ok ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok ()
  in
  let rec next ~block =
    match Queue.take_opt inq with
    | Some f -> Ok (Some f)
    | None -> (
      match Frame.Splitter.pop sp with
      | Error e -> Error e
      | Ok (Some f) ->
        if f.Frame.opcode = Wire.Batch.opcode then (
          match Wire.Batch.decode f.Frame.payload with
          | Error e -> Error e
          | Ok entries ->
            List.iter
              (fun (req_id, opcode, payload) ->
                Queue.push { Frame.req_id; opcode; payload } inq)
              entries;
            next ~block)
        else Ok (Some f)
      | Ok None ->
        if block || readable_now () then (
          match read_some () with
          | Error e -> Error e
          | Ok () -> next ~block)
        else Ok None)
  in
  let write_one (f : Frame.t) =
    let plen = String.length f.payload in
    let len = Frame.header_bytes + plen in
    ensure len;
    let b = !gather in
    Frame.blit_header b 0 ~req_id:f.req_id ~opcode:f.opcode ~payload_len:plen;
    Bytes.blit_string f.payload 0 b Frame.header_bytes plen;
    match Frame.write_bytes fd b ~len with
    | Ok _ -> Ok ()
    | Error e -> Error e
  in
  let t_send frames =
    match frames with
    | [] -> Ok ()
    | [ f ] -> write_one f
    | fs ->
      let inner =
        List.fold_left
          (fun acc (f : Frame.t) ->
            acc + Wire.Batch.entry_header + String.length f.payload)
          0 fs
      in
      if inner > max_payload then
        (* too big for one container: plain frames, one write each *)
        List.fold_left
          (fun acc f -> match acc with Error _ -> acc | Ok () -> write_one f)
          (Ok ()) fs
      else begin
        let len = Frame.header_bytes + inner in
        ensure len;
        let b = !gather in
        Frame.blit_header b 0 ~req_id:0 ~opcode:Wire.Batch.opcode
          ~payload_len:inner;
        let off = ref Frame.header_bytes in
        List.iter
          (fun (f : Frame.t) ->
            let plen = String.length f.payload in
            Wire.Batch.blit_entry_header b !off ~req_id:f.req_id
              ~opcode:f.opcode ~payload_len:plen;
            Bytes.blit_string f.payload 0 b (!off + Wire.Batch.entry_header)
              plen;
            off := !off + Wire.Batch.entry_header + plen)
          fs;
        match Frame.write_bytes fd b ~len with
        | Ok _ -> Ok ()
        | Error e -> Error e
      end
  in
  {
    t_send;
    t_recv = (fun ~block -> next ~block);
    t_now = Unix.gettimeofday;
    t_close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
  }

let virtual_transport ?now server ~client =
  let inq : Frame.t Queue.t = Queue.create () in
  Server.register_pusher server ~client (fun push ->
      let opcode, payload = Wire.encode_push push in
      Queue.push { Frame.req_id = Wire.push_req_id; opcode; payload } inq);
  let complete_into req_id opcode r =
    let payload = Wire.encode_reply r in
    Wire.release_reply r;
    Queue.push { Frame.req_id; opcode; payload } inq
  in
  let t_send frames =
    List.iter
      (fun (f : Frame.t) ->
        match Wire.decode_request ~opcode:f.opcode f.payload with
        | Error e -> complete_into f.req_id f.opcode (Wire.Err e)
        | Ok req -> (
          match
            Server.submit server req
              ~complete:(fun r -> complete_into f.req_id f.opcode r)
          with
          | Ok () -> ()
          | Error e -> complete_into f.req_id f.opcode (Wire.Err e)))
      frames;
    Ok ()
  in
  let t_recv ~block =
    if Queue.is_empty inq then Server.drive server;
    match Queue.take_opt inq with
    | Some f -> Ok (Some f)
    | None -> if block then Error Errno.EIO else Ok None
  in
  {
    t_send;
    t_recv;
    t_now = (match now with Some f -> f | None -> fun () -> 0.);
    t_close = (fun () -> Server.unregister_pusher server ~client);
  }
