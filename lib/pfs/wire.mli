(** The PFS request/reply vocabulary and its wire codecs.

    One request type serves three transports: in-process calls
    ({!Server.call}), the socket protocol (a {!Capfs_ccache.Netlink.Frame}
    whose opcode and payload these codecs fill), and the load
    generator. Requests name files by {e path} — the abstract client
    interface's own vocabulary — so routing can hash the first path
    component to a shard before any file-system state is touched.

    Integers are little-endian u32, strings are u16-length-prefixed; a
    write's data rides as the payload tail (the frame header already
    carries its length). A reply's first byte is a status: [0] for
    success, [1 + Errno.to_index e] for failure — the same closed errno
    vocabulary on the wire as in the API. *)

type stat = { size : int; is_dir : bool }

(** What an {!request.Open_grant} reply carries: the {!Capfs_ccache}
    consistency vocabulary on the wire. [version] bumps at every
    write-open; [cacheable] false means concurrent write sharing was
    detected and the client must write through; [lease_s] bounds how
    long local hits may be served without renewing (u32 milliseconds on
    the wire); [size] is the file size at grant time. *)
type grant = { version : int; cacheable : bool; lease_s : float; size : int }

type request =
  | Open of { client : int; path : string; mode : Capfs.Client.open_mode }
  | Close of { client : int; path : string }
  | Read of { client : int; path : string; offset : int; count : int }
  | Write of { client : int; path : string; offset : int; data : string }
  | Mkdir of string
  | Delete of string
  | Stat of string
  | Sync  (** flush every shard; replies when the slowest one is stable *)
  | Stats  (** merged per-shard statistics report (JSON payload) *)
  | Shutdown
      (** stop the server. No reply is sent: the client closes after
          writing it, and a clean server exit is the acknowledgement. *)
  | Open_grant of {
      client : int;
      path : string;
      mode : Capfs.Client.open_mode;
    }
      (** [Open] plus a caching contract: the reply is an {!reply.Ok_grant}
          and the server starts pushing {!push.Invalidate} frames for
          this path to the issuing connection. Re-sent by a live holder
          to renew its lease. *)
  | Writeback of {
      client : int;
      path : string;
      size : int;  (** file size after the batch (may truncate) *)
      close : bool;  (** this writeback also closes the handle *)
      blocks : (int * string) list;  (** (byte offset, data), ascending *)
    }
      (** one frame committing every dirty block of one file — the
          delayed-write flush at close or lease expiry. *)

type reply =
  | Ok_unit
  | Ok_data of Capfs_disk.Data.t
      (** read payload, possibly short at EOF. Server-side this is an
          arena slice released by the writer fibre after
          {!blit_reply}; {!Server.call} hands callers a detached
          GC-heap copy. *)
  | Ok_stat of stat
  | Ok_stats of string  (** the merged JSON report *)
  | Ok_grant of grant  (** reply to [Open_grant] *)
  | Err of Capfs_core.Errno.t

(** A server-initiated frame, delivered on the reply path under
    {!push_req_id}. *)
type push = Invalidate of { path : string; version : int }

(** The reserved request id push frames travel under; clients never
    issue ids at or above it. *)
val push_req_id : int

(** Frame opcode of a request; replies echo it. *)
val opcode : request -> int

(** The path a request is routed by; [None] for the server-level
    operations ([Sync] fans out to every shard, [Stats]/[Shutdown] are
    answered by the listener itself). *)
val route_path : request -> string option

val encode_request : request -> int * string
(** [(opcode, payload)]. *)

(** [decode_request ~opcode payload] — [Error EINVAL] on an unknown
    opcode or a payload that doesn't parse (truncated field, bad open
    mode). *)
val decode_request :
  opcode:int -> string -> (request, Capfs_core.Errno.t) result

val encode_reply : reply -> string

(** Encoded payload length of a reply — what {!blit_reply} will write. *)
val reply_bytes : reply -> int

(** [blit_reply r b off] lays the encoded reply at [b.(off)]; with
    [Ok_data] the payload moves arena slab -> [b] in one copy, no
    intermediate string. [b] must have {!reply_bytes}[ r] bytes free at
    [off]. *)
val blit_reply : reply -> Bytes.t -> int -> unit

(** Drop the writer's reference on an [Ok_data] arena slice (no-op for
    every other shape). *)
val release_reply : reply -> unit

(** Deep-copy an [Ok_data] payload off the arena (releasing the slice)
    so the reply can outlive the reply arena — the in-process
    {!Server.call} boundary. *)
val detach_reply : reply -> reply

(** Replies are decoded under the request's echoed [opcode] — the
    status byte says whether it's an error, the opcode says which
    success shape follows. *)
val decode_reply :
  opcode:int -> string -> (reply, Capfs_core.Errno.t) result

val encode_push : push -> int * string
(** [(opcode, payload)]. *)

val decode_push : opcode:int -> string -> (push, Capfs_core.Errno.t) result

(** One frame carrying N (req_id, opcode, payload) entries, so a
    pipelined client or the per-connection writer fibre pays one
    [write(2)] for a burst instead of one per message. Entry layout:
    u32 req_id | u16 opcode | u32 payload_len | payload. The container
    is opt-in per connection: the server only sends batches to peers
    that have already sent one (or an [Open_grant]), so old clients
    keep seeing plain frames. *)
module Batch : sig
  (** The container's frame opcode. *)
  val opcode : int

  (** Bytes per entry header (10). *)
  val entry_header : int

  (** Total encoded size of a batch — for sizing a gather buffer. *)
  val encoded_bytes : (int * int * string) list -> int

  (** [blit_entry_header b off ~req_id ~opcode ~payload_len] writes one
      entry header at [b.(off)]; the payload follows at
      [off + entry_header]. *)
  val blit_entry_header :
    Bytes.t -> int -> req_id:int -> opcode:int -> payload_len:int -> unit

  val encode : (int * int * string) list -> string

  (** [Error EINVAL] on a truncated entry header or a payload length
      running past the container. *)
  val decode :
    string -> ((int * int * string) list, Capfs_core.Errno.t) result
end

val pp_reply : Format.formatter -> reply -> unit
