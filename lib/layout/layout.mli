(** The abstract storage-layout interface.

    "The base storage-layout class is only an interface: it does not
    implement an algorithm. Specific layouts are implemented through
    derived classes… for all layout and policy decisions, there exists a
    virtual method." A [Layout.t] is that interface as a record of
    closures; {!Lfs}, {!Ffs} and {!Sim_layout} instantiate it. The
    file-system core is "consulted whenever something needs to be done
    with a raw disk" exclusively through this record.

    Every operation that can fail — allocation on a full volume, I/O
    through a faulty disk — reports [('a, Capfs_core.Errno.t) result]:
    [Error ENOSPC] for exhausted space, [Error EIO]/[ETIMEDOUT] passed
    up from the driver. Implementations keep exceptions internal (they
    may raise {!Capfs_core.Errno.Error} and catch it at this boundary),
    so no layout error escapes as an exception. *)

type t = {
  l_name : string;
  block_bytes : int;
  total_blocks : int;
  (* inodes *)
  alloc_inode : kind:Inode.kind -> (Inode.t, Capfs_core.Errno.t) result;
      (** mint a fresh in-core inode with a unique number;
          [Error ENOSPC] when the inode space is exhausted *)
  get_inode : int -> (Inode.t option, Capfs_core.Errno.t) result;
      (** fetch (loading from disk if necessary); [Ok None] if free *)
  update_inode : Inode.t -> unit;
      (** schedule the inode's new state for persistence (in-core;
          cannot fail — persistence happens at [sync]) *)
  free_inode : int -> (unit, Capfs_core.Errno.t) result;
      (** release the number and its blocks *)
  (* file blocks *)
  read_block : Inode.t -> int -> (Capfs_disk.Data.t, Capfs_core.Errno.t) result;
      (** blocking read of one file block (holes read as zeroes) *)
  read_blocks :
    Inode.t ->
    first:int ->
    count:int ->
    (Capfs_disk.Data.t, Capfs_core.Errno.t) result;
      (** vectored read of [count] consecutive file blocks starting at
          [first]; physically contiguous runs travel as one disk request.
          The result is the blocks' concatenation (holes as zeroes). *)
  write_blocks :
    (int * int * Capfs_disk.Data.t) list -> (unit, Capfs_core.Errno.t) result;
      (** write-back of [(ino, file_block, data)] from the cache;
          blocking until on stable storage *)
  truncate : Inode.t -> blocks:int -> (unit, Capfs_core.Errno.t) result;
      (** release file blocks at index >= [blocks] *)
  adopt : Inode.t -> blocks:int -> (unit, Capfs_core.Errno.t) result;
      (** simulator aid: instantly assign on-disk addresses to the
          file's first [blocks] blocks, as if they had been written long
          ago — "if a file is accessed that is not yet known … it picks a
          random location on disk. Once an initial location has been
          chosen, the simulator sticks to those addresses." Costs no
          simulated time; subsequent reads miss the cache and pay real
          disk time. *)
  sync : unit -> (unit, Capfs_core.Errno.t) result;
      (** persist all metadata (checkpoint) *)
  (* diagnostics *)
  free_blocks : unit -> int;
  layout_stats : unit -> (string * float) list;
}

(** [read_span t inode ~first ~count] reads [count] consecutive file
    blocks via the layout's vectored [read_blocks] — convenience for
    callers and tests. Stops at the first error. *)
val read_span :
  t -> Inode.t -> first:int -> count:int ->
  (Capfs_disk.Data.t, Capfs_core.Errno.t) result

(** [read_blocks_naive read_block inode ~first ~count] implements the
    vectored read contract with one [read_block] call per index — the
    fallback for layouts without native clustering. *)
val read_blocks_naive :
  (Inode.t -> int -> (Capfs_disk.Data.t, Capfs_core.Errno.t) result) ->
  Inode.t ->
  first:int ->
  count:int ->
  (Capfs_disk.Data.t, Capfs_core.Errno.t) result
